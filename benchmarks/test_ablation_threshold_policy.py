"""Ablation (§4.3): what each threshold-controller rule buys.

The controller has three ingredients — the K-th percentile of history, the
spike-reaction escalation, and the S-second warm-up.  We replay the same
fleet traces under:

* the full policy,
* no spike reaction,
* a fixed most-aggressive threshold (always 120 s),
* a fixed most-conservative threshold (always the max candidate),

and verify the paper's design point: the full policy captures far more
memory than fixed-max while keeping the promotion tail far below
fixed-120s.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import ThresholdPolicyConfig
from repro.core.histograms import default_age_bins
from repro.model import FarMemoryModel


def test_ablation_threshold_policy(benchmark, paper_fleet, save_result):
    traces = paper_fleet.trace_db.traces()
    model = FarMemoryModel(traces)
    bins = default_age_bins()

    full = benchmark(
        model.evaluate,
        ThresholdPolicyConfig(percentile_k=98, warmup_seconds=600),
    )
    no_spike = model.evaluate(
        ThresholdPolicyConfig(percentile_k=98, warmup_seconds=600,
                              spike_reaction=False)
    )
    fixed_min = model.evaluate(
        ThresholdPolicyConfig(
            warmup_seconds=0, fixed_threshold_seconds=bins.min_threshold
        )
    )
    fixed_max = model.evaluate(
        ThresholdPolicyConfig(
            warmup_seconds=0, fixed_threshold_seconds=bins.max_threshold
        )
    )

    # Fixed-120s is the savings upper bound but blows through the SLO.
    assert fixed_min.total_cold_pages >= full.total_cold_pages
    assert fixed_min.promotion_rate_p98 > full.promotion_rate_p98

    # Fixed-max is safe but strands most of the opportunity.
    assert full.total_cold_pages > 1.2 * fixed_max.total_cold_pages

    # Removing spike reaction can only make the tail worse (or equal).
    assert no_spike.promotion_rate_p98 >= full.promotion_rate_p98 - 1e-9

    rows = [
        ("full §4.3 policy", f"{full.total_cold_pages:,.0f}",
         f"{full.promotion_rate_p98:.3f}"),
        ("no spike reaction", f"{no_spike.total_cold_pages:,.0f}",
         f"{no_spike.promotion_rate_p98:.3f}"),
        ("fixed T=120s", f"{fixed_min.total_cold_pages:,.0f}",
         f"{fixed_min.promotion_rate_p98:.3f}"),
        (f"fixed T={bins.max_threshold}s",
         f"{fixed_max.total_cold_pages:,.0f}",
         f"{fixed_max.promotion_rate_p98:.3f}"),
    ]
    save_result(
        "ablation_threshold_policy",
        render_table(
            ["controller", "cold pages captured", "p98 %/min"],
            rows,
            title="§4.3 ablation — threshold controller variants",
        ),
    )
