"""Typed metrics registry (the repro analogue of the paper's monitoring).

The paper's control plane only ships because it is wrapped in "rigorous
monitoring" (§5.2-5.3): per-job telemetry feeds the autotuner and SLO
alerts gate every rollout.  This module is the reproduction's unified
metrics layer:

* :class:`Counter` — monotonically increasing totals (pages scanned,
  pages compressed, ...);
* :class:`Gauge` — point-in-time values (arena footprint, coverage);
* :class:`Histogram` — bucketed distributions with percentile estimation
  (promotion-rate SLI, chosen thresholds);
* :class:`MetricRegistry` — owns the metrics, renders Prometheus-style
  text exposition and JSONL snapshots.

Every metric supports labels (``.labels(machine="m0").inc()``); series
are created lazily and capped per metric so a label-cardinality bug
fails loudly instead of eating memory.  A registry can be constructed
disabled, in which case every metric handle is a shared no-op — the hot
paths stay instrumented while tests and benchmarks that want zero
observability cost pass ``MetricRegistry(enabled=False)`` (or
:data:`NULL_REGISTRY`).

The module is dependency-free by design: components default to the
process-global registry (:func:`get_registry`), and anything that wants
isolation injects its own.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import ReproError

__all__ = [
    "MetricError",
    "CardinalityError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricName",
    "MetricRegistry",
    "NULL_REGISTRY",
    "KNOWN_METRIC_NAMES",
    "get_registry",
    "set_registry",
    "DEFAULT_BUCKETS",
]


class MetricName:
    """Canonical metric names (the OBS001 source of truth).

    Every ``counter()``/``gauge()``/``histogram()`` registration must use
    one of these constants (or a literal equal to one — ``repro lint``
    flags anything else), so exposition names cannot drift from what
    dashboards, ``docs/observability.md``, and tests expect.
    """

    # Kernel (per machine; paper §5.1)
    PAGES_SCANNED_TOTAL = "repro_pages_scanned_total"
    KSTALED_SCANS_TOTAL = "repro_kstaled_scans_total"
    KSTALED_CPU_SECONDS_TOTAL = "repro_kstaled_cpu_seconds_total"
    KRECLAIMD_RUNS_TOTAL = "repro_kreclaimd_runs_total"
    PAGES_RECLAIMED_TOTAL = "repro_pages_reclaimed_total"
    PAGES_COMPRESSED_TOTAL = "repro_pages_compressed_total"
    PAGES_REJECTED_TOTAL = "repro_pages_rejected_total"
    PAGES_PROMOTED_TOTAL = "repro_pages_promoted_total"
    ZSWAP_STORED_BYTES_TOTAL = "repro_zswap_stored_bytes_total"
    ZSWAP_POOL_LIMIT_REJECTIONS_TOTAL = (
        "repro_zswap_pool_limit_rejections_total"
    )
    COMPRESS_CPU_SECONDS_TOTAL = "repro_compress_cpu_seconds_total"
    DECOMPRESS_CPU_SECONDS_TOTAL = "repro_decompress_cpu_seconds_total"
    ARENA_COMPACTIONS_TOTAL = "repro_arena_compactions_total"
    ARENA_COMPACTION_RELEASED_BYTES_TOTAL = (
        "repro_arena_compaction_released_bytes_total"
    )
    ARENA_FOOTPRINT_BYTES = "repro_arena_footprint_bytes"
    FAR_PAGES = "repro_far_pages"

    # Node agent & telemetry (paper §5.2)
    AGENT_ROUNDS_TOTAL = "repro_agent_rounds_total"
    THRESHOLD_UPDATES_TOTAL = "repro_threshold_updates_total"
    THRESHOLD_SECONDS = "repro_threshold_seconds"
    PROMOTION_RATE_PCT_PER_MIN = "repro_promotion_rate_pct_per_min"
    TELEMETRY_EXPORTS_TOTAL = "repro_telemetry_exports_total"
    TELEMETRY_ENTRIES_TOTAL = "repro_telemetry_entries_total"
    TELEMETRY_HISTOGRAM_RESETS_TOTAL = (
        "repro_telemetry_histogram_resets_total"
    )
    TELEMETRY_SINK_OUTAGES_TOTAL = "repro_telemetry_sink_outages_total"
    TELEMETRY_SPILLED_ENTRIES_TOTAL = "repro_telemetry_spilled_entries_total"
    TELEMETRY_REPLAYED_ENTRIES_TOTAL = (
        "repro_telemetry_replayed_entries_total"
    )
    TELEMETRY_DROPPED_ENTRIES_TOTAL = "repro_telemetry_dropped_entries_total"
    AGENT_HISTOGRAM_REWARMS_TOTAL = "repro_agent_histogram_rewarms_total"

    # Fault injection & graceful degradation (repro.faults)
    FAULTS_INJECTED_TOTAL = "repro_faults_injected_total"
    DEGRADED_MODE = "repro_degraded_mode"
    ENGINE_SHARD_FALLBACKS_TOTAL = "repro_engine_shard_fallbacks_total"

    # Columnar trace store (repro.tracestore)
    TRACESTORE_ROWS_TOTAL = "repro_tracestore_rows_total"
    TRACESTORE_SEGMENTS_TOTAL = "repro_tracestore_segments_total"
    TRACESTORE_BYTES_WRITTEN_TOTAL = "repro_tracestore_bytes_written_total"
    TRACESTORE_FLUSH_SECONDS = "repro_tracestore_flush_seconds"
    TRACESTORE_BUFFER_ROWS = "repro_tracestore_buffer_rows"
    TRACESTORE_ROWS_DOWNSAMPLED_TOTAL = (
        "repro_tracestore_rows_downsampled_total"
    )
    TRACESTORE_BLOCKS_TOTAL = "repro_tracestore_blocks_total"
    TRACESTORE_BLOCK_ROWS_TOTAL = "repro_tracestore_block_rows_total"

    # Fast far memory model (paper §5.3)
    MODEL_CONFIGS_EVALUATED_TOTAL = "repro_model_configs_evaluated_total"
    MODEL_EVALUATION_SECONDS = "repro_model_evaluation_seconds"
    MODEL_TRACES_COMPILED_TOTAL = "repro_model_traces_compiled_total"

    # Autotuner (paper §5.3)
    BANDIT_SUGGESTIONS_TOTAL = "repro_bandit_suggestions_total"
    BANDIT_OBSERVATIONS_TOTAL = "repro_bandit_observations_total"
    AUTOTUNER_TRIALS_TOTAL = "repro_autotuner_trials_total"
    AUTOTUNER_FEASIBLE_TRIALS_TOTAL = "repro_autotuner_feasible_trials_total"
    AUTOTUNER_BEST_OBJECTIVE_COLD_PAGES = (
        "repro_autotuner_best_objective_cold_pages"
    )

    # Canary controller (paper §5.3 staged rollout, run online)
    CANARY_STAGES_ADVANCED_TOTAL = "repro_canary_stages_advanced_total"
    CANARY_STAGES_ROLLED_BACK_TOTAL = "repro_canary_stages_rolled_back_total"
    CANARY_STAGES_FAILED_CLOSED_TOTAL = (
        "repro_canary_stages_failed_closed_total"
    )
    CANARY_SLICE_COVERAGE = "repro_canary_slice_coverage"
    CANARY_ROUNDS_TOTAL = "repro_canary_rounds_total"

    # Cluster & fleet
    EVENTS_TOTAL = "repro_events_total"
    FLEET_COVERAGE = "repro_fleet_coverage"
    FLEET_COLD_FRACTION = "repro_fleet_cold_fraction"
    FLEET_COMPRESSION_RATIO = "repro_fleet_compression_ratio"
    FLEET_INCOMPRESSIBLE_FRACTION = "repro_fleet_incompressible_fraction"
    FLEET_PROMOTION_RATE_P50_PCT_PER_MIN = (
        "repro_fleet_promotion_rate_p50_pct_per_min"
    )
    FLEET_PROMOTION_RATE_P90_PCT_PER_MIN = (
        "repro_fleet_promotion_rate_p90_pct_per_min"
    )
    FLEET_PROMOTION_RATE_P98_PCT_PER_MIN = (
        "repro_fleet_promotion_rate_p98_pct_per_min"
    )
    FLEET_FAR_MEMORY_GIB = "repro_fleet_far_memory_gib"
    FLEET_SAVED_GIB = "repro_fleet_saved_gib"

    # Span profile (obs.profiling)
    SPAN_CALLS = "repro_span_calls"
    SPAN_WALL_SECONDS = "repro_span_wall_seconds"
    SPAN_SELF_SECONDS = "repro_span_self_seconds"


#: Every registerable metric name (frozen view of :class:`MetricName`,
#: consumed by the OBS001 lint rule and the doc-drift check).
KNOWN_METRIC_NAMES = frozenset(
    value
    for name, value in vars(MetricName).items()
    if not name.startswith("_") and isinstance(value, str)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (upper bounds; +Inf is implicit).  Tuned for
#: the dimensionless rates and seconds this simulator observes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ReproError):
    """A metric was registered or used inconsistently."""


class CardinalityError(MetricError):
    """A metric exceeded its label-cardinality budget."""


def _format_value(value: float) -> str:
    """Render a sample value: integral floats as integers, else repr."""
    if value != value or value in (float("inf"), float("-inf")):
        return {float("inf"): "+Inf", float("-inf"): "-Inf"}.get(value, "NaN")
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class _NullMetric:
    """Shared no-op stand-in for every metric kind on a disabled registry."""

    __slots__ = ()

    def labels(self, **_labels: str) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def percentile(self, q: float) -> float:
        return 0.0


NULL_METRIC = _NullMetric()


class _Metric:
    """Base class: a named family of labelled series."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        max_series: int,
    ):
        self.name = name
        self.help_text = help_text
        self.labelnames = labelnames
        self.max_series = max_series
        self._series: Dict[Tuple[str, ...], object] = {}

    def _make_series(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labels: str):
        """The child series for one label-value combination."""
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[k]) for k in self.labelnames)
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                raise CardinalityError(
                    f"{self.name}: label cardinality exceeded "
                    f"{self.max_series} series"
                )
            series = self._make_series()
            self._series[key] = series
        return series

    def _default(self):
        """The implicit label-less series (only for metrics with no labels)."""
        if self.labelnames:
            raise MetricError(
                f"{self.name} has labels {self.labelnames}; use .labels()"
            )
        return self.labels()

    def series(self) -> List[Tuple[Tuple[str, str], object]]:
        """All (label_pairs, series) in deterministic order."""
        out = []
        for key in sorted(self._series):
            pairs = tuple(zip(self.labelnames, key))
            out.append((pairs, self._series[key]))
        return out


class _CounterSeries:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def _make_series(self) -> _CounterSeries:
        return _CounterSeries()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        """Sum over every series (the fleet-aggregated total)."""
        return sum(s.value for s in self._series.values())


class _GaugeSeries:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Metric):
    """A point-in-time value that can go up and down."""

    kind = "gauge"

    def _make_series(self) -> _GaugeSeries:
        return _GaugeSeries()

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        """Sum over every series."""
        return sum(s.value for s in self._series.values())


class _HistogramSeries:
    __slots__ = ("uppers", "bucket_counts", "sum", "count")

    def __init__(self, uppers: Tuple[float, ...]):
        self.uppers = uppers  # finite upper bounds; +Inf bucket is implicit
        self.bucket_counts = [0] * (len(uppers) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        for i, upper in enumerate(self.uppers):
            if value <= upper:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(float(value))

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile by linear bucket interpolation.

        The estimate is exact at bucket boundaries and linearly
        interpolated within a bucket; values in the +Inf bucket clamp to
        the largest finite bound (the standard Prometheus behaviour).
        """
        if not 0.0 <= q <= 100.0:
            raise MetricError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        cumulative = 0
        lower = 0.0
        for upper, bucket_count in zip(self.uppers, self.bucket_counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                if bucket_count == 0 or upper == lower:
                    return upper
                fraction = (target - previous) / bucket_count
                return lower + fraction * (upper - lower)
            lower = upper
        return self.uppers[-1] if self.uppers else 0.0


class Histogram(_Metric):
    """A bucketed distribution with percentile estimation."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        max_series: int,
        buckets: Tuple[float, ...],
    ):
        super().__init__(name, help_text, labelnames, max_series)
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise MetricError(f"{name}: histogram needs at least one bucket")
        if any(math.isinf(b) or math.isnan(b) for b in uppers):
            raise MetricError(f"{name}: buckets must be finite (+Inf is implicit)")
        self.buckets = uppers

    def _make_series(self) -> _HistogramSeries:
        return _HistogramSeries(self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def observe_many(self, values: Iterable[float]) -> None:
        self._default().observe_many(values)

    def percentile(self, q: float) -> float:
        """Percentile over ALL series merged (the fleet aggregate)."""
        merged = _HistogramSeries(self.buckets)
        for series in self._series.values():
            merged.count += series.count
            merged.sum += series.sum
            for i, c in enumerate(series.bucket_counts):
                merged.bucket_counts[i] += c
        return merged.percentile(q)

    @property
    def count(self) -> int:
        return sum(s.count for s in self._series.values())

    @property
    def sum(self) -> float:
        return sum(s.sum for s in self._series.values())


class MetricRegistry:
    """Owns metrics; renders exposition.  Injectable and off-able.

    Args:
        enabled: when False, every ``counter()``/``gauge()``/``histogram()``
            call returns a shared no-op handle and exposition is empty —
            instrumented code pays one attribute read and nothing else.
        max_series_per_metric: cardinality budget per metric family.
    """

    def __init__(self, enabled: bool = True, max_series_per_metric: int = 4096):
        self.enabled = bool(enabled)
        self.max_series_per_metric = int(max_series_per_metric)
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    # Registration (idempotent: same name returns the same metric)
    # ------------------------------------------------------------------

    def _register(self, cls, name, help_text, labelnames, **kwargs):
        if not self.enabled:
            return NULL_METRIC
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.labelnames != labelnames:
                raise MetricError(
                    f"metric {name} re-registered with a different "
                    f"type or label set"
                )
            return existing
        metric = cls(name, help_text, labelnames,
                     self.max_series_per_metric, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        """Register (or look up) a counter."""
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        """Register (or look up) a gauge."""
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Register (or look up) a histogram."""
        buckets = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        return self._register(Histogram, name, help_text, labelnames,
                              buckets=buckets)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, name: str) -> Optional[_Metric]:
        """The metric registered under ``name`` (None if absent/disabled)."""
        return self._metrics.get(name)

    def value(self, name: str) -> float:
        """Fleet-aggregated value of a counter/gauge (0.0 if absent)."""
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return 0.0
        return metric.value

    def metrics(self) -> List[_Metric]:
        """Every registered metric, sorted by name."""
        return [self._metrics[n] for n in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every metric (fresh registry state)."""
        self._metrics.clear()

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def expose_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for metric in self.metrics():
            if metric.help_text:
                lines.append(f"# HELP {metric.name} {metric.help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for pairs, series in metric.series():
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for upper, count in zip(series.uppers,
                                            series.bucket_counts):
                        cumulative += count
                        le = pairs + (("le", _format_value(upper)),)
                        lines.append(
                            f"{metric.name}_bucket{_render_labels(le)} "
                            f"{cumulative}"
                        )
                    cumulative += series.bucket_counts[-1]
                    le = pairs + (("le", "+Inf"),)
                    lines.append(
                        f"{metric.name}_bucket{_render_labels(le)} {cumulative}"
                    )
                    lines.append(
                        f"{metric.name}_sum{_render_labels(pairs)} "
                        f"{_format_value(series.sum)}"
                    )
                    lines.append(
                        f"{metric.name}_count{_render_labels(pairs)} "
                        f"{series.count}"
                    )
                else:
                    lines.append(
                        f"{metric.name}{_render_labels(pairs)} "
                        f"{_format_value(series.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> List[Dict[str, object]]:
        """One JSON-ready dict per series."""
        out: List[Dict[str, object]] = []
        for metric in self.metrics():
            for pairs, series in metric.series():
                record: Dict[str, object] = {
                    "name": metric.name,
                    "kind": metric.kind,
                    "labels": dict(pairs),
                }
                if isinstance(metric, Histogram):
                    record["count"] = series.count
                    record["sum"] = series.sum
                    record["buckets"] = [
                        {"le": upper, "count": count}
                        for upper, count in zip(series.uppers,
                                                series.bucket_counts)
                    ] + [{"le": "+Inf", "count": series.bucket_counts[-1]}]
                else:
                    record["value"] = series.value
                out.append(record)
        return out

    def export_jsonl(self) -> str:
        """JSON-lines snapshot (one series per line)."""
        return "\n".join(
            json.dumps(record, sort_keys=True) for record in self.snapshot()
        ) + ("\n" if self._metrics else "")

    # ------------------------------------------------------------------
    # Cross-registry folding (parallel shard -> parent merge)
    # ------------------------------------------------------------------

    def baseline(self) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object]:
        """Raw per-series values keyed by (name, label pairs).

        Pass the result to :meth:`delta` later to get only what changed in
        between — the shard-side half of the parallel-engine merge
        protocol.
        """
        base: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}
        for metric in self.metrics():
            for pairs, series in metric.series():
                key = (metric.name, pairs)
                if isinstance(metric, Histogram):
                    base[key] = (
                        tuple(series.bucket_counts), series.sum, series.count
                    )
                else:
                    base[key] = series.value
        return base

    def delta(self, baseline: Dict) -> List[Dict[str, object]]:
        """Snapshot-shaped records for series that changed since ``baseline``.

        Counters report the *increment* (not the absolute value), gauges
        the current value, histograms the per-bucket count increments plus
        sum/count increments.  Unchanged series are omitted entirely — in
        a forked worker this is what keeps one shard from shipping stale
        fork-time copies of other shards' series.  Records carry ``help``
        so :meth:`merge` can register missing families.
        """
        records: List[Dict[str, object]] = []
        for metric in self.metrics():
            for pairs, series in metric.series():
                prev = baseline.get((metric.name, pairs))
                record: Dict[str, object] = {
                    "name": metric.name,
                    "kind": metric.kind,
                    "help": metric.help_text,
                    "labels": dict(pairs),
                }
                if isinstance(metric, Histogram):
                    prev_counts, prev_sum, prev_count = (
                        prev if prev is not None
                        else ((0,) * len(series.bucket_counts), 0.0, 0)
                    )
                    bucket_deltas = [
                        c - p for c, p in zip(series.bucket_counts, prev_counts)
                    ]
                    if series.count == prev_count and not any(bucket_deltas):
                        continue
                    record["count"] = series.count - prev_count
                    record["sum"] = series.sum - prev_sum
                    record["buckets"] = [
                        {"le": upper, "count": count}
                        for upper, count in zip(series.uppers, bucket_deltas)
                    ] + [{"le": "+Inf", "count": bucket_deltas[-1]}]
                elif metric.kind == "counter":
                    increment = series.value - (prev if prev is not None else 0.0)
                    if increment == 0.0:
                        continue
                    record["value"] = increment
                else:  # gauge: ship the absolute value when it changed
                    if prev is not None and series.value == prev:
                        continue
                    record["value"] = series.value
                records.append(record)
        return records

    def merge(self, source: "MetricRegistry | List[Dict[str, object]]") -> None:
        """Fold another registry (or a :meth:`delta` record list) into this one.

        Counters are incremented by the record value, gauges set, histogram
        buckets/sum/count added.  Families are registered on demand (with
        the record's help text), so merging into a fresh registry works;
        merging into a registry that already holds the family reuses it
        (help text is not compared, matching :meth:`_register`).
        """
        if not self.enabled:
            return
        if isinstance(source, MetricRegistry):
            source = source.delta({})
        for record in source:
            name = str(record["name"])
            kind = record["kind"]
            labels = dict(record.get("labels") or {})
            labelnames = tuple(labels)
            help_text = str(record.get("help", ""))
            if kind == "counter":
                series = self.counter(name, help_text, labelnames).labels(**labels)
                series.inc(record["value"])
            elif kind == "gauge":
                series = self.gauge(name, help_text, labelnames).labels(**labels)
                series.set(record["value"])
            elif kind == "histogram":
                buckets = record["buckets"]
                uppers = tuple(float(b["le"]) for b in buckets[:-1])
                family = self.histogram(name, help_text, labelnames,
                                        buckets=uppers)
                series = family.labels(**labels)
                if len(series.bucket_counts) != len(buckets):
                    raise MetricError(
                        f"{name}: cannot merge histogram with "
                        f"{len(buckets)} buckets into a family with "
                        f"{len(series.bucket_counts)}"
                    )
                for i, bucket in enumerate(buckets):
                    series.bucket_counts[i] += int(bucket["count"])
                series.sum += float(record["sum"])
                series.count += int(record["count"])
            else:
                raise MetricError(f"{name}: unknown metric kind {kind!r}")


#: A permanently disabled registry for code that wants observability off.
NULL_REGISTRY = MetricRegistry(enabled=False)

_global_registry = MetricRegistry()


def get_registry() -> MetricRegistry:
    """The process-global default registry."""
    return _global_registry


def set_registry(registry: MetricRegistry) -> MetricRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous
