"""Deterministic fault injection & graceful degradation (``repro.faults``).

Chaos layer for the reproduction: seeded :class:`FaultPlan` schedules
(machine crash/repair, telemetry-sink outages, incompressible storms,
compression failures, memory-pressure spikes, histogram corruption)
executed by a :class:`FaultInjector` from inside ``Cluster.tick``, so a
chaos run replays bit-for-bit under both the serial and parallel engines.

See ``docs/fault_injection.md`` for the scenario catalog and the degraded
modes each consumer implements.
"""

from __future__ import annotations

from repro.common.rng import SeedSequenceFactory
from repro.faults.injector import (
    BrokenSink,
    FaultInjector,
    SinkUnavailableError,
)
from repro.faults.plan import (
    ALL_MACHINES,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    KNOWN_FAULT_KINDS,
    SCENARIO_NAMES,
    build_scenario,
)

__all__ = [
    "ALL_MACHINES",
    "BrokenSink",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "KNOWN_FAULT_KINDS",
    "SCENARIO_NAMES",
    "SinkUnavailableError",
    "attach_scenario",
    "build_scenario",
]


def attach_scenario(
    fleet,
    name: str,
    duration_seconds: int,
    seed: int = 0,
) -> None:
    """Attach a named chaos scenario to every cluster of a fleet.

    Each cluster gets its own plan and injector, built from disjoint
    forks of one root seed, so sibling clusters see independent — but
    individually reproducible — fault schedules.

    Args:
        fleet: a :class:`repro.cluster.WSC` (duck-typed: ``clusters``).
        name: scenario name from :data:`SCENARIO_NAMES`.
        duration_seconds: intended run length (event times scale with it).
        seed: root seed for the whole chaos layer.
    """
    seeds = SeedSequenceFactory(seed)
    for index, cluster in enumerate(fleet.clusters):
        plan = build_scenario(
            name,
            seeds.fork("chaos_plan", index=index),
            duration_seconds,
            n_machines=len(cluster.machines),
        )
        cluster.attach_fault_injector(
            FaultInjector(plan, seeds.fork("chaos_rng", index=index))
        )
