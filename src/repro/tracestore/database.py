"""A drop-in, disk-backed ``TraceDatabase`` over :class:`TraceStore`.

The in-memory :class:`~repro.cluster.trace_db.TraceDatabase` is the
simulator's telemetry warehouse; everything that talks to it does so
through duck typing — the ``TraceSink`` protocol (``add``), the parallel
engine's delta shipping (``mark``/``entries_since``), and the model's
trace reads (``trace_for``/``traces``).  This class implements the same
surface on top of the columnar on-disk store, so a fleet can be wired to
it with no changes to the node agent, the fault injector's sink-outage
wrapper, or the engine:

    db = ColumnarTraceDatabase("run/traces")
    fleet = quickfleet(machines=..., trace_db=db)

plus one capability the in-memory database cannot offer:
:meth:`compiled_traces` builds the vectorized-replay tensors straight
from the on-disk columns without materializing a single
:class:`~repro.model.trace.TraceEntry`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.common.errors import TraceError
from repro.model.trace import (
    CompiledTrace,
    JobTrace,
    TelemetryBlock,
    TraceEntry,
)
from repro.obs import MetricRegistry
from repro.tracestore.store import (
    DEFAULT_BUFFER_ROWS,
    DEFAULT_WINDOW_SECONDS,
    TraceStore,
)

__all__ = ["ColumnarTraceDatabase"]


class ColumnarTraceDatabase:
    """Append-only trace database persisted as columnar segments.

    Interface-compatible with
    :class:`~repro.cluster.trace_db.TraceDatabase` (add / mark /
    entries_since / trace_for / traces / save_jsonl / load_jsonl /
    job_ids / len), backed by a :class:`TraceStore` directory.

    Args:
        root: store directory (created if missing).
        buffer_rows: rows buffered in memory before sealing a segment.
        window_seconds: incremental-aggregation window width.
        registry: metrics registry for the store's self-metrics.
    """

    def __init__(
        self,
        root: Union[str, Path],
        buffer_rows: int = DEFAULT_BUFFER_ROWS,
        window_seconds: int = DEFAULT_WINDOW_SECONDS,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        self.store = TraceStore(
            root,
            buffer_rows=buffer_rows,
            window_seconds=window_seconds,
            registry=registry,
        )

    def __len__(self) -> int:
        return self.store.rows_total

    @property
    def entries_total(self) -> int:
        """Entries stored (sealed segments plus the live buffer)."""
        return self.store.rows_total

    @property
    def job_ids(self) -> List[str]:
        """All jobs with at least one entry."""
        return sorted(self.store.jobs)

    def add(self, entry: TraceEntry) -> None:
        """Store one entry (the :class:`~repro.agent.telemetry.TraceSink`
        protocol)."""
        self.store.append(entry)

    def add_batch(self, entries: Sequence[TraceEntry]) -> None:
        """Store a whole export window as one columnar chunk.

        The batched half of the sink protocol: the columnar kernel's
        telemetry exporter ships each machine's window in a single call
        and the entries go straight to column arrays — no per-entry
        buffer appends.  Equivalent to calling :meth:`add` per entry.
        """
        self.store.append_batch(entries)

    def add_block(self, block: TelemetryBlock) -> None:
        """Store a whole export window as one zero-copy column block.

        The fastest rung of the sink protocol: the columnar kernel's
        telemetry exporter gathers the window straight from pool columns
        and the arrays land in the segment buffer with only the ordinal
        columns rewritten — no :class:`TraceEntry` is ever constructed.
        Equivalent to calling :meth:`add` per row of ``block.entries()``.
        """
        self.store.append_columns(block)

    def flush(self) -> int:
        """Seal buffered rows into a segment; returns rows sealed."""
        return self.store.flush()

    def close(self) -> None:
        """Flush and release the store."""
        self.store.close()

    # ------------------------------------------------------------------
    # Delta shipping (parallel engine)
    # ------------------------------------------------------------------

    def mark(self) -> Dict[str, int]:
        """An opaque position marker for :meth:`entries_since`."""
        return {job_id: self.store.job_rows(job_id) for job_id in self.store.jobs}

    def entries_since(self, mark: Dict[str, int]) -> List[TraceEntry]:
        """Entries added after ``mark`` was taken.

        Per-job order is preserved; jobs are visited in insertion order.
        When the delta is still entirely in the write buffer — the
        steady state for the engine's per-barrier shipping — this reads
        no segment files.
        """
        out: List[TraceEntry] = []
        for job_id in self.store.jobs:
            out.extend(self.store.entries_for(job_id, start=mark.get(job_id, 0)))
        return out

    def block_marker(self) -> int:
        """An opaque position marker for :meth:`block_since`."""
        return int(self.store.rows_total)

    def block_since(self, marker: int) -> Optional[TelemetryBlock]:
        """Rows appended after ``marker``, as one zero-copy block.

        The columnar twin of :meth:`mark`/:meth:`entries_since` for the
        parallel engine: a forked worker never seals segments (see
        :meth:`TraceStore.flush`), so every row appended since the fork
        is still pending and :meth:`TraceStore.pending_tail_columns`
        hands back exactly the delta — in append order, without
        materializing a single entry.  Returns None when nothing was
        appended.  String tables are compacted to the jobs/machines the
        delta actually references.
        """
        delta = self.store.rows_total - int(marker)
        if delta <= 0:
            return None
        cols = self.store.pending_tail_columns(delta)
        jobs = self.store.jobs
        machines = self.store.machines
        job_uniq, job_local = np.unique(cols["job"], return_inverse=True)
        machine_uniq, machine_local = np.unique(
            cols["machine"], return_inverse=True
        )
        return TelemetryBlock(
            bins=self.store.bins,
            job_table=[jobs[int(o)] for o in job_uniq],
            machine_table=[machines[int(o)] for o in machine_uniq],
            job=job_local.astype(np.int64),
            machine=machine_local.astype(np.int64),
            time=cols["time"],
            working_set_pages=cols["working_set_pages"],
            resident_pages=cols["resident_pages"],
            cpu_cores=cols["cpu_cores"],
            promotion_counts=cols["promotion_counts"],
            promotion_young=cols["promotion_young"],
            cold_counts=cols["cold_counts"],
            cold_young=cols["cold_young"],
        )

    # ------------------------------------------------------------------
    # Trace reads
    # ------------------------------------------------------------------

    def trace_for(self, job_id: str) -> JobTrace:
        """The full trace of one job, materialized from columns.

        Raises:
            TraceError: if the job has no entries.
        """
        entries = self.store.entries_for(job_id)
        trace = JobTrace(job_id)
        for entry in entries:
            trace.append(entry)
        return trace

    def traces(
        self, start: Optional[int] = None, end: Optional[int] = None
    ) -> List[JobTrace]:
        """All job traces, optionally windowed to ``[start, end)``."""
        result = []
        for job_id in self.store.jobs:
            trace = JobTrace(job_id)
            for entry in self.store.entries_for(job_id):
                if start is not None and entry.time < start:
                    continue
                if end is not None and entry.time >= end:
                    continue
                trace.append(entry)
            if trace.entries:
                result.append(trace)
        return result

    def compiled_traces(
        self, start: Optional[int] = None, end: Optional[int] = None
    ) -> List[CompiledTrace]:
        """Vectorized-replay tensors built directly from the columns.

        No :class:`TraceEntry` objects are materialized; see
        :meth:`TraceStore.compiled_traces`.
        """
        return self.store.compiled_traces(start=start, end=end)

    # ------------------------------------------------------------------
    # Persistence interchange
    # ------------------------------------------------------------------

    def save_jsonl(self, path: Union[str, Path]) -> int:
        """Export every entry as one JSON line (atomic, like the
        in-memory database); returns lines written."""
        path = Path(path)
        tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
        count = 0
        try:
            with tmp.open("w", encoding="utf-8") as fh:
                for job_id in self.store.jobs:
                    for entry in self.store.entries_for(job_id):
                        fh.write(json.dumps(entry.to_dict()))
                        fh.write("\n")
                        count += 1
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return count

    @classmethod
    def load_jsonl(
        cls,
        path: Union[str, Path],
        root: Union[str, Path],
        buffer_rows: int = DEFAULT_BUFFER_ROWS,
        registry: Optional[MetricRegistry] = None,
    ) -> "ColumnarTraceDatabase":
        """Import a JSON-lines trace file into a new columnar store.

        Args:
            path: a :meth:`save_jsonl`-format file.
            root: directory for the new store.

        Raises:
            TraceError: on a malformed line, with its location.
        """
        db = cls(root, buffer_rows=buffer_rows, registry=registry)
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            for line_number, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    db.add(TraceEntry.from_dict(json.loads(line)))
                except (json.JSONDecodeError, TraceError) as exc:
                    raise TraceError(
                        f"{path}:{line_number}: bad trace entry: {exc}"
                    ) from exc
        db.flush()
        return db
