"""The reprolint engine: files -> ASTs -> rules -> findings.

The paper's control plane is only as good as its measurements: the K-th
percentile threshold policy (§4.3) and the GP-Bandit autotuner (§5.3)
both assume that replaying the same fleet with the same seed reproduces
the same histograms bit-for-bit, and the parallel engine's serial ≡
parallel contract (``docs/performance.md``) leans on the same property.
``repro.checks`` enforces the hazards *statically*: every rule encodes
one way that contract has broken (or could break) in this codebase.

Architecture:

* :class:`Rule` — one check; subclasses provide an :class:`ast.NodeVisitor`
  (via :attr:`Rule.visitor_class`) or override :meth:`Rule.check`.
* :class:`RuleVisitor` — visitor base with import tracking and a
  ``report(node, message)`` helper.
* ``@register`` — adds a rule class to the global :data:`RULES` registry.
* :class:`LintEngine` — walks paths, parses each file once, runs every
  applicable rule, and strips findings suppressed with
  ``# repro: noqa[RULE]`` comments.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "FileContext",
    "LintError",
    "LintEngine",
    "RULES",
    "Rule",
    "RuleVisitor",
    "register",
    "iter_python_files",
]

from repro.common.errors import ReproError


class LintError(ReproError):
    """The lint engine itself failed (bad path, unparsable rule set)."""


#: ``# repro: noqa`` (all rules) or ``# repro: noqa[DET001,ACC001]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

#: Matches every rule id (used by suppression parsing and --rule).
_RULE_ID_RE = re.compile(r"^[A-Z]{3,6}\d{3}$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Local (per-file) rules produce single-line findings.  The flow passes
    (``repro.checks.flow``) produce *multi-line* diagnostics: the finding
    anchors at the **sink** line — where nondeterminism enters the tick
    path, or where an unpicklable attribute lands — and :attr:`chain`
    carries the source→sink call chain, one hop per entry.  Suppression
    (``# repro: noqa[RULE]``) and baseline identity both key on the sink:
    the chain is rendered for humans but excluded from
    :meth:`baseline_key`, because its file:line hops drift with every
    edit of any file along the chain.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Call-chain context, outermost hop first (flow findings only).
    chain: Tuple[str, ...] = ()

    def render(self) -> str:
        """``path:line:col: RULE message`` plus indented chain lines."""
        head = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if not self.chain:
            return head
        return "\n".join([head, *(f"    {hop}" for hop in self.chain)])

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        document: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.chain:
            document["chain"] = list(self.chain)
        return document

    def baseline_key(self) -> str:
        """Identity used by the baseline workflow (line numbers drift as
        files are edited, so the key is path + rule + message; the chain
        of a flow finding is context, not identity)."""
        return f"{self.path}::{self.rule}::{self.message}"


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: Path
    rel_path: str  #: posix-style path relative to the lint root
    source: str
    tree: ast.Module
    #: line number -> rule ids suppressed there (``None`` = all rules).
    suppressions: Dict[int, Optional[Set[str]]] = field(default_factory=dict)

    def is_suppressed(self, finding: Finding) -> bool:
        """True when a ``# repro: noqa`` comment covers this finding."""
        rules = self.suppressions.get(finding.line, _MISSING)
        if rules is _MISSING:
            return False
        return rules is None or finding.rule in rules


_MISSING = object()


def _parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = None
        else:
            suppressions[lineno] = {
                r.strip().upper() for r in rules.split(",") if r.strip()
            }
    return suppressions


class RuleVisitor(ast.NodeVisitor):
    """Visitor base: tracks imports, reports findings.

    Subclasses get two alias tables maintained for free:

    * :attr:`module_aliases` — local name -> dotted module for every
      ``import x`` / ``import x.y as z``;
    * :attr:`symbol_aliases` — local name -> ``module.symbol`` for every
      ``from x import y [as z]``.
    """

    def __init__(self, rule: "Rule", ctx: FileContext):
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []
        self.module_aliases: Dict[str, str] = {}
        self.symbol_aliases: Dict[str, str] = {}

    def report(self, node: ast.AST, message: str) -> None:
        """Record one finding anchored at ``node``."""
        self.findings.append(
            Finding(
                path=self.ctx.rel_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.rule.id,
                message=message,
            )
        )

    # -- import bookkeeping (generic_visit keeps traversal going) -------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:  # import a.b as c -> c resolves to a.b
                self.module_aliases[alias.asname] = alias.name
            else:  # import a.b binds only the root name a
                root = alias.name.split(".")[0]
                self.module_aliases[root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self.symbol_aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- shared helpers --------------------------------------------------

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve an attribute chain to a dotted string, following import
        aliases at the root (``np.random.seed`` -> ``numpy.random.seed``).
        Returns None for non-name expressions (calls, subscripts...)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        resolved = self.module_aliases.get(root)
        if resolved is None:
            resolved = self.symbol_aliases.get(root, root)
        parts.append(resolved)
        return ".".join(reversed(parts))


class Rule:
    """One static check.  Subclass and ``@register``."""

    id: str = ""
    title: str = ""
    #: Rel-path fragments this rule is limited to (empty = every file).
    path_fragments: Tuple[str, ...] = ()
    #: Rel-path fragments exempt from this rule.
    allowlist: Tuple[str, ...] = ()
    visitor_class: Optional[Type[RuleVisitor]] = None

    def applies_to(self, rel_path: str) -> bool:
        """Whether this rule runs on a file (path scoping + allowlist)."""
        if any(fragment in rel_path for fragment in self.allowlist):
            return False
        if not self.path_fragments:
            return True
        return any(fragment in rel_path for fragment in self.path_fragments)

    def check(self, ctx: FileContext) -> List[Finding]:
        """Run the rule over one parsed file."""
        if self.visitor_class is None:  # pragma: no cover - abstract misuse
            raise NotImplementedError(f"{self.id}: no visitor_class")
        visitor = self.visitor_class(self, ctx)
        visitor.visit(ctx.tree)
        return visitor.findings


#: The global rule registry (id -> instance), filled by ``@register``.
RULES: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULES`."""
    if not _RULE_ID_RE.match(rule_cls.id):
        raise LintError(f"bad rule id {rule_cls.id!r}")
    if rule_cls.id in RULES:
        raise LintError(f"duplicate rule id {rule_cls.id}")
    RULES[rule_cls.id] = rule_cls()
    return rule_cls


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted
    (deterministic engine output is itself part of the contract)."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


class LintEngine:
    """Runs a rule set over a source tree.

    Args:
        root: paths are reported relative to this directory (findings are
            stable across checkouts, which the baseline workflow needs).
        rules: rule ids to run (default: every registered rule).
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        rules: Optional[Sequence[str]] = None,
    ):
        self.root = (root or Path.cwd()).resolve()
        if rules is None:
            self.rules = [RULES[rule_id] for rule_id in sorted(RULES)]
        else:
            unknown = [r for r in rules if r not in RULES]
            if unknown:
                raise LintError(
                    f"unknown rule(s) {', '.join(sorted(unknown))}; "
                    f"available: {', '.join(sorted(RULES))}"
                )
            self.rules = [RULES[rule_id] for rule_id in sorted(set(rules))]

    def _rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def lint_file(self, path: Path) -> List[Finding]:
        """Lint one file; parse errors surface as a PARSE finding."""
        rel = self._rel(path)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [
                Finding(
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule="PARSE",
                    message=f"file does not parse: {exc.msg}",
                )
            ]
        ctx = FileContext(
            path=path,
            rel_path=rel,
            source=source,
            tree=tree,
            suppressions=_parse_suppressions(source),
        )
        findings: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(rel):
                continue
            findings.extend(
                f for f in rule.check(ctx) if not ctx.is_suppressed(f)
            )
        return findings

    def run(self, paths: Sequence[Path]) -> List[Finding]:
        """Lint every python file under ``paths``; findings sorted by
        (path, line, col, rule)."""
        findings: List[Finding] = []
        for path in iter_python_files(paths):
            findings.extend(self.lint_file(path))
        return sorted(findings)
