"""The autotuning pipeline over the fast far memory model."""

import numpy as np
import pytest

from repro.common.errors import AutotunerError
from repro.core.histograms import AgeHistogram, default_age_bins
from repro.core.slo import PromotionRateSlo
from repro.core.threshold_policy import ThresholdPolicyConfig
from repro.model.replay import FarMemoryModel, FleetReplayReport
from repro.model.trace import JobTrace, TraceEntry
from repro.autotuner.pipeline import AutotuningPipeline, TuningResult
from repro.autotuner.search_space import config_from_values


def make_fleet_traces(n_jobs=6, n_entries=16, seed=0):
    """Jobs with varying cold sizes and occasional promotion bursts."""
    rng = np.random.default_rng(seed)
    bins = default_age_bins()
    traces = []
    for j in range(n_jobs):
        trace = JobTrace(f"j{j}")
        cold_pages = int(rng.integers(200, 800))
        for i in range(n_entries):
            promo = AgeHistogram(bins)
            if rng.random() < 0.3:
                promo.add_ages(
                    rng.uniform(120, 2000, size=int(rng.integers(1, 40)))
                )
            cold = AgeHistogram(bins)
            cold.add_ages(
                np.concatenate(
                    [
                        rng.uniform(120, 20000, size=cold_pages),
                        np.zeros(1000 - cold_pages),
                    ]
                )
            )
            trace.append(
                TraceEntry(
                    job_id=f"j{j}",
                    machine_id="m0",
                    time=i * 300,
                    working_set_pages=1000 - cold_pages,
                    promotion_histogram=promo,
                    cold_age_histogram=cold,
                    resident_pages=1000,
                )
            )
        traces.append(trace)
    return traces


@pytest.fixture
def model():
    return FarMemoryModel(make_fleet_traces())


class TestPipeline:
    def test_run_produces_trials(self, model):
        pipeline = AutotuningPipeline(model, batch_size=2, seed=0)
        result = pipeline.run(iterations=3)
        assert len(result.trials) == 6
        assert all(t.report is not None for t in result.trials)

    def test_finds_feasible_config(self, model):
        pipeline = AutotuningPipeline(model, batch_size=3, seed=0)
        result = pipeline.run(iterations=4)
        assert result.best is not None
        assert result.best.feasible
        config = result.best_config
        assert 50.0 <= config.percentile_k <= 99.9

    def test_best_is_max_feasible_objective(self, model):
        pipeline = AutotuningPipeline(model, batch_size=2, seed=1)
        result = pipeline.run(iterations=4)
        feasible = [t.objective for t in result.trials if t.feasible]
        assert result.best.objective == max(feasible)

    def test_objective_curve_monotone(self, model):
        pipeline = AutotuningPipeline(model, batch_size=2, seed=2)
        result = pipeline.run(iterations=3)
        curve = result.objective_curve()
        finite = [c for c in curve if np.isfinite(c)]
        assert all(b >= a for a, b in zip(finite, finite[1:]))

    def test_random_baseline(self, model):
        pipeline = AutotuningPipeline(model, seed=0)
        result = pipeline.run_random_baseline(n_trials=6, seed=3)
        assert len(result.trials) == 6

    def test_no_feasible_raises_on_best_config(self):
        result = TuningResult()
        with pytest.raises(AutotunerError):
            _ = result.best_config

    def test_gp_at_least_matches_random_here(self, model):
        """On this small problem GP-Bandit should do no worse than random
        search at an equal budget."""
        gp = AutotuningPipeline(model, batch_size=3, seed=5).run(iterations=4)
        random = AutotuningPipeline(model, seed=5).run_random_baseline(
            n_trials=12, seed=6
        )
        if gp.best and random.best:
            assert gp.best.objective >= 0.8 * random.best.objective


class _InfeasibleModel:
    """A model whose every evaluation violates the SLO."""

    def __init__(self):
        self.slo = PromotionRateSlo()

    def evaluate_many(self, configs):
        return [
            FleetReplayReport(
                config=config,
                total_cold_pages=1.0,
                promotion_rate_p98=self.slo.target_pct_per_min * 10.0,
                slo_target=self.slo.target_pct_per_min,
                job_results=[],
            )
            for config in configs
        ]


class _BatchRecordingModel:
    """Delegating wrapper that records every evaluate_many batch size."""

    def __init__(self, inner):
        self._inner = inner
        self.slo = inner.slo
        self.batch_sizes = []

    def evaluate_many(self, configs):
        configs = list(configs)
        self.batch_sizes.append(len(configs))
        return self._inner.evaluate_many(configs)


class TestBatchedRuns:
    def test_run_evaluates_one_batch_per_iteration(self):
        recording = _BatchRecordingModel(FarMemoryModel(make_fleet_traces()))
        pipeline = AutotuningPipeline(recording, batch_size=3, seed=0)
        result = pipeline.run(iterations=2)
        assert recording.batch_sizes == [3, 3]
        assert len(result.trials) == 6

    def test_random_baseline_batches_and_preserves_draws(self, model):
        """Batching must not change which configurations the baseline
        tries: the rng stream is drawn point by point, exactly as the
        unbatched loop drew it."""
        pipeline = AutotuningPipeline(model, batch_size=4, seed=0)
        result = pipeline.run_random_baseline(n_trials=6, seed=3)
        rng = np.random.default_rng(3)
        expected = [
            config_from_values(
                pipeline.space.from_unit(rng.random(pipeline.space.dim))
            )
            for _ in range(6)
        ]
        assert [t.config for t in result.trials] == expected

    def test_no_feasible_trial_leaves_best_none(self):
        """Regression: a warm-started bandit can hold a feasible
        observation while the current run produces only infeasible
        trials — ``run`` used to crash with ``max() of empty sequence``
        instead of reporting best=None."""
        pipeline = AutotuningPipeline(_InfeasibleModel(), batch_size=2,
                                      seed=0)
        pipeline.bandit.observe(
            np.full(pipeline.space.dim, 0.5), objective=100.0, constraint=0.0
        )
        result = pipeline.run(iterations=2)
        assert len(result.trials) == 4
        assert result.best is None
        with pytest.raises(AutotunerError):
            _ = result.best_config
