"""The paper's primary contribution: SLO-driven cold-page identification.

This package is the device-independent control plane of §4 — histogram
schemas, the promotion-rate SLO, the K-th-percentile threshold controller,
and the coverage/TCO metrics that score it.  It has no dependency on the
simulated kernel: the same code is driven online by the node agent and
offline by the fast far memory model.
"""

from repro.core.coverage import (
    CoverageSample,
    cold_memory_coverage,
    coverage_timeseries,
    fleet_coverage,
)
from repro.core.histograms import AgeBins, AgeHistogram, default_age_bins
from repro.core.slo import (
    PromotionRateSlo,
    normalized_promotion_rate,
    promotions_per_minute,
    working_set_pages,
)
from repro.core.threshold_policy import (
    DISABLED,
    ColdAgeThresholdPolicy,
    ColdMemoryPolicy,
    FixedThresholdPolicy,
    PaperPolicy,
    ThresholdPolicyConfig,
    as_policy,
    best_threshold,
)
from repro.core.tco import TcoModel, TcoReport

__all__ = [
    "AgeBins",
    "AgeHistogram",
    "ColdAgeThresholdPolicy",
    "ColdMemoryPolicy",
    "CoverageSample",
    "DISABLED",
    "FixedThresholdPolicy",
    "PaperPolicy",
    "PromotionRateSlo",
    "TcoModel",
    "TcoReport",
    "ThresholdPolicyConfig",
    "as_policy",
    "best_threshold",
    "cold_memory_coverage",
    "coverage_timeseries",
    "default_age_bins",
    "fleet_coverage",
    "normalized_promotion_rate",
    "promotions_per_minute",
    "working_set_pages",
]
