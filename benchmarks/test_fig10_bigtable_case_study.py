"""Figure 10: Bigtable A/B case study — coverage and user-level IPC.

Paper: zswap achieves 5-15 % coverage on Bigtable with ~3x temporal
variation (diurnal load), and the user-IPC difference between control
(zswap off) and experiment (zswap on) machines is within machine noise.
We run both arms on identical query streams and verify all three claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agent import NodeAgent
from repro.analysis import render_table
from repro.common.rng import SeedSequenceFactory
from repro.common.units import GIB, HOUR
from repro.core import ThresholdPolicyConfig
from repro.kernel import FarMemoryMode, Machine, MachineConfig
from repro.workloads import BigtableApp, BigtableConfig

MACHINES = 3
SIM_SECONDS = 10 * HOUR


def run_group(mode: FarMemoryMode):
    apps = []
    agents = []
    for i in range(MACHINES):
        machine = Machine(
            f"{mode.value}-{i}",
            MachineConfig(dram_bytes=2 * GIB, mode=mode),
            seeds=SeedSequenceFactory(500 + i),
        )
        app = BigtableApp(
            "bigtable", machine, BigtableConfig(),
            np.random.default_rng(500 + i),
        )
        apps.append((machine, app))
        if mode is FarMemoryMode.PROACTIVE:
            agents.append(
                NodeAgent(machine, ThresholdPolicyConfig(
                    percentile_k=98, warmup_seconds=600))
            )
    for t in range(0, SIM_SECONDS, 60):
        for machine, app in apps:
            app.step(t, 60)
            machine.tick(t)
        for agent in agents:
            agent.maybe_control(t)
    return apps


@pytest.fixture(scope="module")
def ab_groups():
    return run_group(FarMemoryMode.OFF), run_group(FarMemoryMode.PROACTIVE)


def test_fig10_bigtable_ab(benchmark, ab_groups, save_result):
    control, experiment = ab_groups

    def summarize():
        control_ipc = np.array(
            [s.user_ipc for _, app in control for s in app.samples]
        )
        experiment_ipc = np.array(
            [s.user_ipc for _, app in experiment for s in app.samples]
        )
        coverages = np.array(
            [
                s.coverage
                for _, app in experiment
                for s in app.samples
                if s.time >= 2 * HOUR
            ]
        )
        return control_ipc, experiment_ipc, coverages

    control_ipc, experiment_ipc, coverages = benchmark(summarize)

    delta = (
        experiment_ipc.mean() - control_ipc.mean()
    ) / control_ipc.mean()
    noise = control_ipc.std() / control_ipc.mean()

    # Claim 1: the IPC delta is within the noise band.
    assert abs(delta) <= 2 * noise

    # Claim 2: meaningful coverage materializes (paper: 5-15%).
    cov_p50 = float(np.percentile(coverages[coverages > 0], 50))
    assert 0.02 <= cov_p50 <= 0.6

    # Claim 3: strong temporal variation (paper: ~3x over time).
    positive = coverages[coverages > 0]
    variation = np.percentile(positive, 90) / max(
        np.percentile(positive, 10), 1e-9
    )
    assert variation >= 1.5

    save_result(
        "fig10_bigtable_case_study",
        render_table(
            ["metric", "measured", "paper"],
            [
                ("IPC delta (exp - control)", f"{100 * delta:+.2f}%",
                 "within noise"),
                ("IPC noise (control std)", f"{100 * noise:.2f}%", "-"),
                ("coverage p50", f"{100 * cov_p50:.1f}%", "5-15%"),
                ("coverage p90/p10 over time", f"{variation:.1f}x", "~3x"),
            ],
            title="Fig. 10 — Bigtable A/B case study",
        ),
    )
