"""The TCO model, including the paper's §6.1 headline arithmetic."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.tco import TcoModel


class TestPaperArithmetic:
    def test_headline_4_to_5_percent(self):
        """20% coverage x 32% cold bound x 67% cost cut = 4-5% of DRAM TCO."""
        report = TcoModel().evaluate(
            coverage=0.20, cold_fraction=0.32, compression_ratio=3.0
        )
        assert 0.04 <= report.dram_saving_fraction <= 0.05
        assert report.effective_compressed_fraction == pytest.approx(0.064)

    def test_compression_ratio_drives_cost_cut(self):
        """3x compression means compressed bytes cost 1/3: a 67% cut."""
        report = TcoModel().evaluate(
            coverage=1.0, cold_fraction=1.0, compression_ratio=3.0
        )
        assert report.dram_saving_fraction == pytest.approx(2.0 / 3.0)

    def test_millions_of_dollars_at_wsc_scale(self):
        """At an exabyte-class fleet, 4% of DRAM TCO is millions per year."""
        model = TcoModel(dram_dollars_per_gib_year=25.0, fleet_dram_gib=10_000_000)
        report = model.evaluate(
            coverage=0.20, cold_fraction=0.32, compression_ratio=3.0
        )
        assert report.dram_dollars_saved_per_year > 1_000_000


class TestCpuDebit:
    def test_cpu_overhead_reduces_net(self):
        model = TcoModel(fleet_dram_gib=1000)
        gross = model.evaluate(0.2, 0.32, 3.0)
        with_cpu = model.evaluate(
            0.2, 0.32, 3.0, cpu_cores_per_machine_overhead=0.01, machines=100
        )
        assert with_cpu.net_dollars_saved_per_year < gross.net_dollars_saved_per_year
        assert with_cpu.cpu_overhead_dollars_per_year > 0

    def test_paper_scale_cpu_overhead_is_negligible(self):
        """At the paper's measured ~0.006% machine CPU the debit is tiny."""
        model = TcoModel(fleet_dram_gib=1_000_000)
        # 36-core machines, 0.006% of cycles on zswap.
        report = model.evaluate(
            0.20, 0.32, 3.0,
            cpu_cores_per_machine_overhead=36 * 0.00006,
            machines=4000,
        )
        assert report.cpu_overhead_dollars_per_year < (
            0.01 * report.dram_dollars_saved_per_year
        )


class TestValidation:
    def test_bad_inputs_rejected(self):
        model = TcoModel()
        with pytest.raises(ConfigurationError):
            model.evaluate(coverage=1.2, cold_fraction=0.3, compression_ratio=3.0)
        with pytest.raises(ConfigurationError):
            model.evaluate(coverage=0.2, cold_fraction=-0.1, compression_ratio=3.0)
        with pytest.raises(ConfigurationError):
            model.evaluate(coverage=0.2, cold_fraction=0.3, compression_ratio=0.0)

    def test_bad_model_rejected(self):
        with pytest.raises(ConfigurationError):
            TcoModel(dram_dollars_per_gib_year=0)
