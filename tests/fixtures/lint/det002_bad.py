"""DET002 positive fixture: process-global / unseeded randomness."""

import random
import numpy as np
from random import shuffle


def draw(items):
    value = random.random()  # finding: stdlib global RNG
    shuffle(items)  # finding: from-import alias
    jitter = np.random.normal()  # finding: numpy legacy global RNG
    rng = np.random.default_rng()  # finding: unseeded generator
    return value, jitter, rng
