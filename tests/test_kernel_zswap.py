"""zswap store/load paths: cutoff, state flips, CPU accounting."""

import numpy as np
import pytest

from repro.common.units import PAGE_SIZE, ZSMALLOC_MAX_PAYLOAD
from repro.core.histograms import default_age_bins
from repro.kernel.compression import ContentProfile
from repro.kernel.memcg import MemCg, PageState
from repro.kernel.zsmalloc import ZsmallocArena
from repro.kernel.zswap import Zswap


@pytest.fixture
def zswap():
    return Zswap(ZsmallocArena())


def make_memcg(profile, rng, n=100):
    return MemCg("job", n, profile, default_age_bins(), rng)


class TestCompressPath:
    def test_compressible_pages_go_far(self, zswap, memcg):
        idx = memcg.allocate(50)
        stored = zswap.compress(memcg, idx)
        assert stored == 50
        assert memcg.far_pages == 50
        assert zswap.arena.live_objects == 50
        stats = zswap.stats_for("test-job")
        assert stats.pages_compressed == 50
        assert stats.compress_seconds > 0

    def test_incompressible_pages_rejected(self, zswap, rng):
        profile = ContentProfile(incompressible_fraction=1.0)
        memcg = make_memcg(profile, rng)
        idx = memcg.allocate(20)
        stored = zswap.compress(memcg, idx)
        assert stored == 0
        assert memcg.incompressible[idx].all()
        assert memcg.state[idx].max() == PageState.NEAR
        stats = zswap.stats_for("job")
        assert stats.pages_rejected == 20
        # Wasted cycles are still charged (the §3.2 opportunity cost).
        assert stats.compress_seconds > 0

    def test_mixed_batch_splits(self, zswap, memcg):
        idx = memcg.allocate(10)
        memcg.payload_bytes[idx[:4]] = ZSMALLOC_MAX_PAYLOAD + 10
        stored = zswap.compress(memcg, idx)
        assert stored == 6
        assert memcg.incompressible[idx[:4]].all()

    def test_cutoff_boundary_inclusive(self, zswap, memcg):
        idx = memcg.allocate(1)
        memcg.payload_bytes[idx] = ZSMALLOC_MAX_PAYLOAD
        assert zswap.compress(memcg, idx) == 1

    def test_empty_batch(self, zswap, memcg):
        assert zswap.compress(memcg, np.zeros(0, dtype=np.int64)) == 0

    def test_compress_consumes_dirty_bit(self, zswap, memcg):
        idx = memcg.allocate(5)
        memcg.dirtied[idx] = True
        zswap.compress(memcg, idx)
        assert not memcg.dirtied[idx].any()


class TestDecompressPath:
    def test_promotion_flips_state_and_accounts(self, zswap, memcg):
        idx = memcg.allocate(30)
        memcg.age_scans[idx] = 5
        zswap.compress(memcg, idx)
        total_latency = zswap.decompress(memcg, idx[:10])
        assert total_latency > 0
        assert memcg.far_pages == 20
        assert memcg.promoted_pages_total == 10
        assert zswap.arena.live_objects == 20
        stats = zswap.stats_for("test-job")
        assert stats.pages_decompressed == 10
        assert len(stats.decompress_latencies) == 10

    def test_promotion_resets_age(self, zswap, memcg):
        idx = memcg.allocate(5)
        memcg.age_scans[idx] = 7
        zswap.compress(memcg, idx)
        zswap.decompress(memcg, idx)
        assert (memcg.age_scans[idx] == 0).all()

    def test_promotion_histogram_sees_age_at_access(self, zswap, memcg):
        idx = memcg.allocate(5)
        memcg.age_scans[idx] = 8  # 960s
        zswap.compress(memcg, idx)
        zswap.decompress(memcg, idx)
        assert memcg.promotion_histogram.colder_than(960) == 5

    def test_latency_samples_capped(self, zswap, memcg):
        from repro.kernel.zswap import ZswapJobStats

        stats = zswap.stats_for("test-job")
        stats.decompress_latencies = [0.0] * ZswapJobStats.LATENCY_SAMPLE_CAP
        stats.latency_samples_seen = ZswapJobStats.LATENCY_SAMPLE_CAP
        idx = memcg.allocate(5)
        zswap.compress(memcg, idx)
        zswap.decompress(memcg, idx)
        assert (
            len(stats.decompress_latencies) == ZswapJobStats.LATENCY_SAMPLE_CAP
        )


class TestLatencyReservoir:
    """The latency buffer is a true reservoir sample (Algorithm R), not
    a keep-the-first-N window — late tail latencies must be able to
    displace early ones."""

    def test_late_samples_can_land(self, zswap):
        from repro.kernel.zswap import ZswapJobStats

        cap = ZswapJobStats.LATENCY_SAMPLE_CAP
        stats = zswap.stats_for("test-job")
        early = np.zeros(cap)
        zswap._sample_latencies(stats, early)
        assert len(stats.decompress_latencies) == cap
        assert stats.latency_samples_seen == cap
        late = np.full(cap, 99.0)
        zswap._sample_latencies(stats, late)
        assert len(stats.decompress_latencies) == cap
        assert stats.latency_samples_seen == 2 * cap
        landed = sum(1 for v in stats.decompress_latencies if v == 99.0)
        # Each late sample survives with probability cap/(i+1) ~ 1/2;
        # with 4096 draws the landed count concentrates hard around
        # cap * (1 - ln 2) ... but the exact distribution does not
        # matter here — only that the window behaviour (landed == 0)
        # is gone and the reservoir stays a genuine mixture.
        assert 0 < landed < cap

    def test_seen_counter_tracks_every_sample(self, zswap, memcg):
        idx = memcg.allocate(60)
        zswap.compress(memcg, idx)
        zswap.decompress(memcg, idx[:25])
        zswap.decompress(memcg, idx[25:60])
        stats = zswap.stats_for("test-job")
        assert stats.latency_samples_seen == 60
        assert len(stats.decompress_latencies) == 60

    def test_reservoir_is_seeded_deterministic(self):
        from repro.kernel.zsmalloc import ZsmallocArena
        from repro.kernel.zswap import ZswapJobStats

        cap = ZswapJobStats.LATENCY_SAMPLE_CAP
        samples = np.arange(3 * cap, dtype=float)

        def run():
            z = Zswap(ZsmallocArena(), rng=np.random.default_rng(77))
            stats = z.stats_for("j")
            for chunk in np.split(samples, 3):
                z._sample_latencies(stats, chunk)
            return list(stats.decompress_latencies)

        assert run() == run()


class TestCompressionRatio:
    def test_mean_ratio_near_profile_median(self, zswap, rng):
        profile = ContentProfile(
            median_ratio=3.0, sigma=0.2, incompressible_fraction=0.0
        )
        memcg = make_memcg(profile, rng, n=5000)
        idx = memcg.allocate(5000)
        zswap.compress(memcg, idx)
        ratio = zswap.stats_for("job").mean_compression_ratio
        assert 2.5 <= ratio <= 3.5

    def test_no_pages_ratio_zero(self, zswap):
        assert zswap.stats_for("nobody").mean_compression_ratio == 0.0


class TestEviction:
    def test_evict_job_releases_arena(self, zswap, memcg):
        idx = memcg.allocate(20)
        zswap.compress(memcg, idx)
        far = np.flatnonzero(memcg.far_mask())
        zswap.evict_job(memcg, far)
        assert zswap.arena.live_objects == 0
        # Eviction is not promotion: no promotion stats.
        assert zswap.stats_for("test-job").pages_decompressed == 0
