"""Online fleet controller: the §5.3 rollout ladder run against the live
fleet, closing the autotuning loop.

The offline pipeline (:mod:`repro.autotuner.pipeline`) scores candidate
configurations with the fast far memory model; this module is the other
half of the paper's control plane — take a candidate, canary it on a
cluster subset through :class:`~repro.autotuner.deployment.StagedDeployment`,
watch the SLI windows over each soak, and either promote it to production
or roll every touched cluster back to its own recorded prior policy.
Measured outcomes flow back into the bandit
(:meth:`AutotuningPipeline.observe_measured`), so the explore-measure
loop can run entirely online.

Everything here is deterministic by construction: no wall clock, no RNG,
all time from the fleet's logical clock — so a canary round replayed
under a chaos scenario produces bit-identical decisions whether the soaks
execute serially or through the parallel :class:`~repro.engine.FleetEngine`.
:func:`canary_smoke` asserts exactly that, plus the fail-closed coverage
gate, as a CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.autotuner.deployment import (
    DEFAULT_STAGES,
    DeploymentStage,
    StagedDeployment,
    StageOutcome,
)
from repro.common.validation import check_positive
from repro.core.threshold_policy import (
    ColdMemoryPolicy,
    FixedThresholdPolicy,
    PaperPolicy,
    as_policy,
)
from repro.cluster.wsc import WSC, quickfleet
from repro.obs import (
    MetricName,
    MetricRegistry,
    Tracer,
    get_registry,
    get_tracer,
)

__all__ = ["CanaryDecision", "FleetController", "canary_smoke"]


@dataclass(frozen=True)
class CanaryDecision:
    """The controller's verdict on one canaried policy.

    Attributes:
        policy: the policy that was canaried.
        promoted: True when the ladder reached production.
        reason: ``"promoted"``, or the failing stage's reason
            (``"slo-breach"`` / ``"insufficient-coverage"``).
        outcomes: every stage outcome, in ladder order.
        p98: worst per-stage p98 normalized promotion rate observed.
        far_pages: fleet far-memory pages after the round (the online
            objective reported back to the bandit).
    """

    policy: ColdMemoryPolicy
    promoted: bool
    reason: str
    outcomes: Tuple[StageOutcome, ...]
    p98: float
    far_pages: int

    def signature(self) -> tuple:
        """A comparable digest of the decision (for replay equivalence).

        Two runs of the same round must agree on this tuple exactly —
        including the floats, which are required to be bit-identical
        between the serial and parallel engines.
        """
        return (
            self.promoted,
            self.reason,
            self.far_pages,
            tuple(
                (
                    o.stage.name,
                    o.passed,
                    o.reason,
                    o.p98_promotion_rate,
                    o.slice_samples,
                    o.unattributed_samples,
                    o.alerts,
                )
                for o in self.outcomes
            ),
        )


class FleetController:
    """Runs canary rounds against a live fleet.

    Args:
        fleet: the WSC under control.
        stages: the rollout ladder used for every round.
        slo_limit: maximum acceptable p98 normalized promotion rate.
        min_coverage: fail-closed floor on slice SLI samples per stage
            (see :class:`StagedDeployment`).
        registry: metrics registry for the ``repro_canary_*`` series
            (defaults to the process-global one).
        tracer: span tracer (defaults to the process-global one).
        engine: optional :class:`repro.engine.FleetEngine` bound to
            ``fleet``; soaks run through it when given.
    """

    def __init__(
        self,
        fleet: WSC,
        stages: Sequence[DeploymentStage] = DEFAULT_STAGES,
        slo_limit: float = 0.2,
        min_coverage: int = 10,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
        engine=None,
    ):
        self.fleet = fleet
        self.stages = tuple(stages)
        self.slo_limit = float(slo_limit)
        self.min_coverage = int(min_coverage)
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.engine = engine
        self.decisions: List[CanaryDecision] = []
        self._m_rounds = self.registry.counter(
            MetricName.CANARY_ROUNDS_TOTAL,
            "Canary rounds run by the online controller, by verdict.",
            ("verdict",),
        )

    def canary(self, policy: object) -> CanaryDecision:
        """Canary one policy through the ladder; promote or roll back.

        A fresh :class:`StagedDeployment` is used per round so stage
        outcomes never leak between rounds; the rollback target is
        whatever each cluster is running *now* (possibly a previously
        promoted round's policy).
        """
        candidate = as_policy(policy)
        deployment = StagedDeployment(
            self.fleet,
            stages=self.stages,
            slo_limit=self.slo_limit,
            min_coverage=self.min_coverage,
            registry=self.registry,
            engine=self.engine,
        )
        with self.tracer.span("canary.round", policy=candidate.describe()):
            promoted = deployment.deploy(candidate)
        outcomes = tuple(deployment.outcomes)
        reason = "promoted" if promoted else outcomes[-1].reason
        decision = CanaryDecision(
            policy=candidate,
            promoted=promoted,
            reason=reason,
            outcomes=outcomes,
            p98=max(o.p98_promotion_rate for o in outcomes),
            far_pages=int(
                sum(m.far_pages for m in self.fleet.machines)
            ),
        )
        self.decisions.append(decision)
        self._m_rounds.labels(verdict=reason).inc()
        return decision

    def run_online(self, pipeline, rounds: int = 4) -> List[CanaryDecision]:
        """Close the loop: bandit proposes, the live fleet disposes.

        Each round asks ``pipeline`` (an
        :class:`~repro.autotuner.pipeline.AutotuningPipeline`) for one
        candidate, canaries it as the paper policy, and feeds the
        *measured* objective and constraint back to the bandit.  Rounds
        that failed closed report nothing — zero telemetry is not a
        measurement of the configuration, and scoring it would teach the
        bandit that silence is safety.
        """
        check_positive(rounds, "rounds")
        made: List[CanaryDecision] = []
        for _ in range(rounds):
            point, config = pipeline.propose()
            decision = self.canary(PaperPolicy(config))
            made.append(decision)
            if decision.reason != "insufficient-coverage":
                pipeline.observe_measured(
                    point,
                    objective=decision.far_pages,
                    constraint=decision.p98,
                )
        return made


#: Smoke ladder: two short stages over a two-cluster fleet.
_SMOKE_STAGES = (
    DeploymentStage("qualification", 0.5, 600),
    DeploymentStage("production", 1.0, 600),
)


def _smoke_fleet(seed: int, registry: MetricRegistry, tracer: Tracer) -> WSC:
    from repro.faults import attach_scenario

    fleet = quickfleet(
        clusters=2,
        machines_per_cluster=2,
        jobs_per_machine=2,
        seed=seed,
        churn_duration_range=(1800, 3600),
        registry=registry,
        tracer=tracer,
    )
    # Storm chaos spanning warmup and both soaks.
    attach_scenario(fleet, "storm", duration_seconds=3600, seed=7)
    fleet.run(1800)  # warm up under chaos so ages/histograms are live
    return fleet


def canary_smoke(seed: int = 31, workers: int = 2) -> dict:
    """CI gate for the online controller (used by ``repro ci``).

    Three assertions in one cheap run:

    1. a deliberately SLO-breaching policy (fixed 120 s threshold against
       a near-zero promotion budget) canaried under storm chaos is rolled
       back — it never reaches production;
    2. the decision is bit-identical whether the soaks run serially or
       through the parallel engine;
    3. a fleet producing zero SLI samples fails closed with
       ``"insufficient-coverage"`` instead of passing vacuously.

    Returns:
        Report dict with one boolean per assertion plus the verdicts.

    Raises:
        AssertionError: when any of the three properties does not hold.
    """
    from repro.engine import FleetEngine

    breaching = FixedThresholdPolicy(
        threshold_seconds=120.0, warmup_seconds=0
    )
    decisions = {}
    for mode in ("serial", "parallel"):
        registry, tracer = MetricRegistry(), Tracer()
        fleet = _smoke_fleet(seed, registry, tracer)
        engine = (
            FleetEngine(fleet, workers=workers)
            if mode == "parallel"
            else None
        )
        controller = FleetController(
            fleet,
            stages=_SMOKE_STAGES,
            slo_limit=1e-6,
            min_coverage=10,
            registry=registry,
            tracer=tracer,
            engine=engine,
        )
        decisions[mode] = controller.canary(breaching)

    serial, parallel = decisions["serial"], decisions["parallel"]
    identical = serial.signature() == parallel.signature()
    rolled_back = not serial.promoted and serial.reason == "slo-breach"

    # Fail-closed leg: control period longer than the soak => no samples.
    registry, tracer = MetricRegistry(), Tracer()
    silent = quickfleet(
        clusters=1,
        machines_per_cluster=1,
        jobs_per_machine=1,
        seed=seed,
        control_period=7200,
        registry=registry,
        tracer=tracer,
    )
    controller = FleetController(
        silent,
        stages=(DeploymentStage("qualification", 1.0, 600),),
        registry=registry,
        tracer=tracer,
    )
    closed = controller.canary(FixedThresholdPolicy(3600.0))
    failed_closed = (
        not closed.promoted and closed.reason == "insufficient-coverage"
    )

    assert rolled_back, (
        "breaching policy was not rolled back: "
        f"promoted={serial.promoted} reason={serial.reason!r}"
    )
    assert identical, (
        "serial and parallel canary decisions diverged: "
        f"{serial.signature()} != {parallel.signature()}"
    )
    assert failed_closed, (
        "zero-sample canary did not fail closed: "
        f"promoted={closed.promoted} reason={closed.reason!r}"
    )
    return {
        "breach_rolled_back": rolled_back,
        "identical_decisions": identical,
        "failed_closed_on_silence": failed_closed,
        "serial_reason": serial.reason,
        "parallel_reason": parallel.reason,
        "silent_reason": closed.reason,
    }
