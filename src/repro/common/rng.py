"""Deterministic random-number streams.

Every stochastic component of the simulator draws from its own named stream
derived from a single root seed, so that (a) whole-fleet simulations are
reproducible bit-for-bit, and (b) adding randomness to one component does not
perturb the draws seen by any other component.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.common.errors import ConfigurationError

__all__ = ["SeedSequenceFactory", "stream"]


class SeedSequenceFactory:
    """Derives independent, reproducible RNG streams from one root seed.

    Streams are identified by string names (plus optional integer indices),
    hashed into spawn keys, so the same ``(seed, name)`` pair always yields
    the same stream regardless of creation order.

    Example::

        rngs = SeedSequenceFactory(42)
        workload_rng = rngs.stream("workload", job_id=7)
        arena_rng = rngs.stream("zsmalloc")
    """

    def __init__(self, root_seed: int = 0):
        if root_seed < 0:
            raise ConfigurationError(
                f"root seed must be non-negative, got {root_seed}"
            )
        self.root_seed = int(root_seed)

    def stream(self, name: str, **indices: int) -> np.random.Generator:
        """Return the generator for the named stream.

        Args:
            name: a stable component name, e.g. ``"workload"``.
            **indices: optional integer coordinates (job id, machine id, ...)
                that distinguish sibling streams within a component.
        """
        key = name + "".join(f"/{k}={v}" for k, v in sorted(indices.items()))
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        words = [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]
        seq = np.random.SeedSequence([self.root_seed, *words])
        return np.random.default_rng(seq)

    def fork(self, name: str, **indices: int) -> "SeedSequenceFactory":
        """Return a child factory whose streams are disjoint from this one."""
        child = self.stream(name, **indices).integers(0, 2**31 - 1)
        return SeedSequenceFactory(int(child))


def stream(seed: int, name: str, **indices: int) -> np.random.Generator:
    """One-shot convenience wrapper around :class:`SeedSequenceFactory`."""
    return SeedSequenceFactory(seed).stream(name, **indices)
