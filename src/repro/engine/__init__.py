"""Parallel fleet execution (the simulator's scale-out layer).

The serial :meth:`repro.cluster.wsc.WSC.run` loop walks every cluster on
one core; fleet-scale experiments (Fig. 5-7, TCO sweeps) are wall-clock
bound by that single thread.  This package shards clusters across a
fork-based worker pool while preserving the simulator's determinism
contract: a parallel run with the same seeds produces bit-identical
coverage reports and SLI histories to the serial run.

* :class:`FleetEngine` — the parallel executor (worker pool, barrier per
  simulated minute, delta merge of SLI samples / trace entries / metric
  registries back into the parent).
* :func:`plan_shards` — deterministic LPT assignment of clusters to
  workers.
* :mod:`repro.engine.bench` — the ``repro bench`` serial-vs-parallel
  throughput harness behind ``BENCH_fleet.json``.
"""

from repro.engine.parallel import (
    EngineError,
    EngineStats,
    FleetEngine,
    default_worker_count,
    fork_available,
)
from repro.engine.sharding import ShardPlan, plan_shards

__all__ = [
    "EngineError",
    "EngineStats",
    "FleetEngine",
    "ShardPlan",
    "default_worker_count",
    "fork_available",
    "plan_shards",
]
