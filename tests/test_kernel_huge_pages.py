"""Huge-page (THP) modeling: shared accessed bits and splitting."""

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.core.histograms import default_age_bins
from repro.kernel.compression import ContentProfile
from repro.kernel.memcg import MemCg, PageState
from repro.kernel.zsmalloc import ZsmallocArena
from repro.kernel.zswap import Zswap

HUGE = 64  # use small "huge" mappings to keep tests fast


@pytest.fixture
def huge_memcg(rng):
    profile = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)
    memcg = MemCg("job", 512, profile, default_age_bins(), rng)
    memcg.allocate(512)
    memcg.map_huge(0, pages_per_huge=HUGE)
    memcg.map_huge(HUGE, pages_per_huge=HUGE)
    memcg.scan_update()  # consume allocation touches
    return memcg


class TestMapping:
    def test_mapping_records_group(self, huge_memcg):
        assert (huge_memcg.huge_group[:HUGE] == 0).all()
        assert (huge_memcg.huge_group[HUGE : 2 * HUGE] == HUGE).all()
        assert (huge_memcg.huge_group[2 * HUGE :] == -1).all()

    def test_overlap_rejected(self, huge_memcg):
        with pytest.raises(SimulationError):
            huge_memcg.map_huge(HUGE // 2, pages_per_huge=HUGE)

    def test_nonresident_rejected(self, rng):
        memcg = MemCg("j", 256, ContentProfile(), default_age_bins(), rng)
        memcg.allocate(32)  # not the full range
        with pytest.raises(SimulationError):
            memcg.map_huge(0, pages_per_huge=64)

    def test_out_of_bounds_rejected(self, huge_memcg):
        with pytest.raises(Exception):
            huge_memcg.map_huge(512 - 8, pages_per_huge=HUGE)


class TestSharedAccessedBit:
    def test_one_touch_keeps_whole_mapping_young(self, huge_memcg):
        # Touch a single page of group 0; none of group HUGE.
        huge_memcg.touch(np.array([3]))
        huge_memcg.scan_update()
        # All of group 0 reads as accessed -> age 0.
        assert (huge_memcg.age_scans[:HUGE] == 0).all()
        # Group HUGE aged normally.
        assert (huge_memcg.age_scans[HUGE : 2 * HUGE] == 1).all()

    def test_huge_mapping_hides_cold_pages(self, huge_memcg):
        """The fragmentation-vs-resolution trade-off: one hot page in a
        huge mapping makes 2 MiB undetectable as cold."""
        for _ in range(4):
            huge_memcg.touch(np.array([3]))  # only page 3 is really hot
            huge_memcg.scan_update()
        assert huge_memcg.cold_pages(120) == 512 - 2 * HUGE + HUGE
        # Base pages aged; group 0 pinned young by page 3; group HUGE cold.
        assert (huge_memcg.age_scans[:HUGE] == 0).all()

    def test_dirty_bit_shared_too(self, huge_memcg):
        huge_memcg.incompressible[:HUGE] = True
        huge_memcg.touch(np.array([5]), write=True)
        huge_memcg.scan_update()
        # The shared PMD dirty bit cleared incompressible for the group.
        assert not huge_memcg.incompressible[:HUGE].any()


class TestSplitting:
    def test_swap_out_splits_mapping(self, huge_memcg):
        zswap = Zswap(ZsmallocArena())
        for _ in range(3):
            huge_memcg.scan_update()
        candidates = huge_memcg.reclaim_candidates(120)
        group0 = candidates[candidates < HUGE]
        assert group0.size
        zswap.compress(huge_memcg, group0[:8])
        # The partially-swapped mapping fell back to base pages.
        assert (huge_memcg.huge_group[:HUGE] == -1).all()
        # The untouched mapping survived.
        assert (huge_memcg.huge_group[HUGE : 2 * HUGE] == HUGE).all()

    def test_explicit_split(self, huge_memcg):
        huge_memcg.split_huge(0)
        assert (huge_memcg.huge_group[:HUGE] == -1).all()
        # After the split, per-page coldness is visible again.
        huge_memcg.touch(np.array([3]))
        huge_memcg.scan_update()
        assert huge_memcg.age_scans[3] == 0
        assert (huge_memcg.age_scans[4:HUGE] >= 1).all()


class TestColdDetectionResolution:
    @pytest.mark.parametrize("huge_fraction", [0.0, 0.5, 1.0])
    def test_more_huge_pages_less_detectable_cold(self, rng, huge_fraction):
        """Sweep: with one hot page per mapping, detectable cold memory
        shrinks as more of the job is huge-mapped."""
        profile = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)
        memcg = MemCg("j", 512, profile, default_age_bins(), rng)
        memcg.allocate(512)
        n_groups = int(huge_fraction * 512 / HUGE)
        for g in range(n_groups):
            memcg.map_huge(g * HUGE, pages_per_huge=HUGE)
        memcg.scan_update()
        for _ in range(3):
            # One hot page per 64-page span, huge or not.
            memcg.touch(np.arange(0, 512, HUGE))
            memcg.scan_update()
        detectable = memcg.cold_pages(120)
        expected = 512 - n_groups * HUGE - (512 // HUGE - n_groups)
        assert detectable == expected
