"""Figure 5: cold-memory coverage over time across the autotuner rollout.

Paper: hand-tuned zswap stabilized at ~15 % coverage; deploying the
ML-based autotuner raised it to ~20 % — a ~30 % relative improvement.  We
regenerate the coverage timeline of the tuned fleet against a same-seed
control fleet that stays hand-tuned, and verify the autotuner wins.
"""

from __future__ import annotations

import numpy as np

from repro.core.coverage import coverage_timeseries
from repro.analysis import render_table
from repro.common.units import HOUR


def test_fig5_coverage_timeline(benchmark, autotune_run, save_result):
    fleet = autotune_run["fleet"]
    control = autotune_run["control"]
    rollout = autotune_run["rollout_time"]

    tuned_series = benchmark(
        coverage_timeseries,
        [s for c in fleet.clusters for s in c.coverage_samples],
        HOUR,
    )
    control_series = coverage_timeseries(
        [s for c in control.clusters for s in c.coverage_samples], HOUR
    )

    # Compare mean coverage over the post-rollout window (skipping one
    # settle hour) — endpoint snapshots are diurnal-noise-dominated.
    def window_mean(series):
        window = [s for s in series if s.time >= rollout + HOUR]
        return float(np.mean([s.coverage for s in window]))

    tuned_cov = window_mean(tuned_series)
    control_cov = window_mean(control_series)

    # The autotuned fleet must sustain higher coverage than the
    # identically-seeded hand-tuned control (paper: +30% relative).
    assert tuned_cov > control_cov
    relative_gain = (tuned_cov - control_cov) / control_cov
    assert relative_gain > 0.05

    best = autotune_run["best_config"]
    rows = []
    control_by_time = {s.time: s.coverage for s in control_series}
    for sample in tuned_series:
        marker = "<- autotuner live" if sample.time >= rollout else ""
        rows.append(
            (
                f"{sample.time / HOUR:.0f}",
                f"{100 * sample.coverage:.1f}",
                f"{100 * control_by_time.get(sample.time, 0.0):.1f}",
                marker,
            )
        )
    save_result(
        "fig5_coverage_timeline",
        render_table(
            ["hour", "tuned fleet cov %", "control cov %", ""],
            rows,
            title=(
                "Fig. 5 — coverage over time (paper: 15% hand-tuned -> 20% "
                f"autotuned). Winner: K={best.percentile_k:.1f}, "
                f"S={best.warmup_seconds}s; relative gain "
                f"{100 * relative_gain:.0f}%"
            ),
        ),
    )
