"""Tests for the REPRO_CHECKS runtime invariant checker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.checks.invariants import (
    ENV_VAR,
    InvariantViolation,
    check_machine_accounting,
    check_memcg_histogram,
    check_merge_delta,
    invariants_enabled,
    set_invariants_enabled,
)
from repro.obs.metrics import MetricRegistry


@pytest.fixture
def enabled():
    set_invariants_enabled(True)
    yield
    set_invariants_enabled(None)


class TestToggle:
    def test_env_var_enables(self, monkeypatch):
        set_invariants_enabled(None)
        monkeypatch.setenv(ENV_VAR, "1")
        assert invariants_enabled()
        set_invariants_enabled(None)
        monkeypatch.setenv(ENV_VAR, "0")
        assert not invariants_enabled()
        set_invariants_enabled(None)

    def test_override_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "0")
        set_invariants_enabled(True)
        assert invariants_enabled()
        set_invariants_enabled(None)
        assert not invariants_enabled()
        set_invariants_enabled(None)


class TestMachineAccounting:
    def _warm(self, machine, rng):
        memcg = machine.add_job("job", capacity_pages=512)
        idx = machine.allocate("job", 256)
        machine.touch("job", idx[:64])
        memcg.cold_age_threshold = 240.0  # arm kreclaimd
        for minute in range(1, 30):
            machine.tick(minute * 120)
            machine.run_reclaim()
        return machine

    def test_clean_machine_passes(self, machine, rng, enabled):
        self._warm(machine, rng)
        check_machine_accounting(machine)  # does not raise
        assert machine.far_pages > 0  # the check actually saw far pages

    def test_trips_on_pool_size_leak(self, machine, rng, enabled):
        self._warm(machine, rng)
        # Inject the bug REPRO_CHECKS exists to catch: a page marked far
        # in the memcg without a matching object in the arena.
        memcg = machine.memcgs["job"]
        near = np.flatnonzero(memcg.resident & ~memcg.far_mask())
        memcg.mark_far(near[:1])
        with pytest.raises(InvariantViolation, match="machine.far_pages"):
            check_machine_accounting(machine)


class TestMemcgHistogram:
    def _scan(self, memcg, scans=5):
        idx = memcg.allocate(300)
        memcg.touch(idx[:50])
        for _ in range(scans):
            memcg.scan_update()

    def test_clean_memcg_passes(self, memcg, enabled):
        self._scan(memcg)
        check_memcg_histogram(memcg)  # does not raise

    def test_trips_on_desynced_histogram(self, memcg, enabled):
        self._scan(memcg)
        memcg.cold_age_histogram.young_count += 7  # corrupt the snapshot
        with pytest.raises(InvariantViolation, match="cold_histogram"):
            check_memcg_histogram(memcg)

    def test_scan_update_runs_check_when_enabled(self, memcg, enabled):
        # With checks on, the hook inside scan_update repairs nothing and
        # passes silently on a healthy memcg.
        self._scan(memcg)
        memcg.scan_update()


class TestMergeDelta:
    def _delta(self, build):
        registry = MetricRegistry()
        build(registry)
        return registry.delta({})

    def test_clean_delta_passes(self):
        def build(registry):
            registry.counter("repro_events_total", "Events.").inc(3)
            registry.histogram("repro_span_seconds", "Spans.").observe(0.5)

        check_merge_delta(self._delta(build))  # does not raise

    def test_trips_on_negative_counter(self):
        records = [{"name": "repro_x_total", "kind": "counter", "value": -1.0}]
        with pytest.raises(InvariantViolation, match="counter_monotonic"):
            check_merge_delta(records)

    def test_trips_on_lost_histogram_mass(self):
        def build(registry):
            registry.histogram("repro_span_seconds", "Spans.").observe(0.5)

        records = self._delta(build)
        for record in records:
            record["count"] = int(record["count"]) + 1  # lose a bucket
        with pytest.raises(InvariantViolation, match="histogram_mass"):
            check_merge_delta(records)


class TestEndToEnd:
    def test_parallel_engine_with_checks_on(self, enabled):
        """A short sharded run with every invariant armed (acceptance)."""
        from repro.cluster import quickfleet
        from repro.engine.parallel import FleetEngine

        fleet = quickfleet(
            clusters=2, machines_per_cluster=1, jobs_per_machine=2, seed=7,
        )
        engine = FleetEngine(fleet, workers=2, barrier_seconds=120)
        engine.run(600)  # raises InvariantViolation on any breakage
