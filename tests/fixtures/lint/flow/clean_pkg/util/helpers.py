"""Deterministic helpers: nothing here originates taint."""

import numpy as np


def draw(seed: int) -> float:
    # Seeded construction is the sanctioned pattern (not a source).
    rng = np.random.default_rng(seed)
    return float(rng.random())


def pure(x: int) -> int:
    return x * 2
