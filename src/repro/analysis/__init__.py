"""Analysis: distribution statistics, per-figure pipelines, text reports."""

from repro.analysis.distributions import (
    ViolinStats,
    cdf_points,
    percentile_summary,
    violin_stats,
)
from repro.analysis.fleet_analysis import (
    ThresholdSweepPoint,
    cold_memory_vs_threshold,
    compression_ratios_per_job,
    cpu_overhead_per_job,
    cpu_overhead_per_machine,
    decompression_latency_samples,
    per_job_cold_fractions,
    per_machine_cold_fractions_by_cluster,
    per_machine_coverage_by_cluster,
)
from repro.analysis.sli import per_job_promotion_rates, slo_violation_fraction
from repro.analysis.reporting import (
    render_cdf,
    render_fleet_health,
    render_flame_table,
    render_series,
    render_table,
    render_violins,
)

__all__ = [
    "ThresholdSweepPoint",
    "ViolinStats",
    "cdf_points",
    "cold_memory_vs_threshold",
    "compression_ratios_per_job",
    "cpu_overhead_per_job",
    "cpu_overhead_per_machine",
    "decompression_latency_samples",
    "per_job_cold_fractions",
    "per_job_promotion_rates",
    "slo_violation_fraction",
    "per_machine_cold_fractions_by_cluster",
    "per_machine_coverage_by_cluster",
    "percentile_summary",
    "render_cdf",
    "render_fleet_health",
    "render_flame_table",
    "render_series",
    "render_table",
    "render_violins",
    "violin_stats",
]
