"""Thermostat-style sampling cold-page detection (related work, §7).

Thermostat [Agarwal & Wenisch, ASPLOS'17] classifies *huge-page* (2 MiB)
regions as cold by "poisoning" the mappings of a small random sample of
regions each epoch and counting the page faults the sample incurs: a
sampled region with no faults over an epoch is likely cold.  The paper
contrasts its own accessed-bit approach with this design: sampling covers
only a fraction of memory per epoch and adds fault latency to sampled hot
pages, while kstaled's PTE-accessed-bit scan covers every page at a fixed
background cost.

:class:`ThermostatDetector` reproduces the sampling estimator at region
granularity so the comparison bench can measure, on identical access
streams, each detector's precision/recall against ground truth and its
overhead proxy (sampled faults vs pages scanned).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

from repro.common.units import MINUTE, PAGE_SIZE
from repro.common.validation import check_fraction, check_positive, require
from repro.core.histograms import AgeBins, AgeHistogram
from repro.core.slo import PromotionRateSlo
from repro.core.threshold_policy import (
    ColdAgeThresholdPolicy,
    ColdMemoryPolicy,
    ThresholdPolicyConfig,
)

__all__ = [
    "ThermostatConfig",
    "ThermostatDetector",
    "ThermostatPolicy",
    "ThermostatPolicyConfig",
    "ThermostatThresholdPolicy",
]

#: Pages per 2 MiB huge-page region.
HUGE_PAGE_PAGES = (2 << 20) // PAGE_SIZE


@dataclass(frozen=True)
class ThermostatConfig:
    """Sampling parameters.

    Attributes:
        region_pages: granularity of classification (512 = 2 MiB regions).
        sample_fraction: fraction of regions poisoned each epoch.
        epoch_seconds: how long one sample is observed before judgment.
        ewma_alpha: smoothing of per-region access-rate estimates across
            epochs (regions are only sampled occasionally, so estimates
            must persist between samples).
    """

    region_pages: int = HUGE_PAGE_PAGES
    sample_fraction: float = 0.05
    epoch_seconds: int = 120
    ewma_alpha: float = 0.5

    def __post_init__(self) -> None:
        check_positive(self.region_pages, "region_pages")
        check_fraction(self.sample_fraction, "sample_fraction")
        check_positive(self.epoch_seconds, "epoch_seconds")
        check_fraction(self.ewma_alpha, "ewma_alpha")


class ThermostatDetector:
    """Sampling-based cold-region estimator for one job.

    Drive it with the same access stream the kernel sees::

        detector.begin_epoch(rng)
        for each tick:
            faults = detector.record_accesses(touched_page_indices)
        detector.end_epoch(now)

    Args:
        n_pages: the job's page-space size.
        config: sampling parameters.
    """

    def __init__(self, n_pages: int, config: Optional[ThermostatConfig] = None):
        check_positive(n_pages, "n_pages")
        self.config = config if config is not None else ThermostatConfig()
        self.n_pages = int(n_pages)
        self.n_regions = -(-self.n_pages // self.config.region_pages)
        #: Per-region estimated accesses per epoch (NaN = never sampled).
        self.estimated_rate = np.full(self.n_regions, np.nan)
        #: Regions currently poisoned.
        self._sampled: np.ndarray = np.zeros(0, dtype=np.int64)
        #: Fault counts for the current epoch's sample.
        self._epoch_faults = np.zeros(0, dtype=np.int64)
        #: Pages that already faulted this epoch (poison is removed by the
        #: first fault, as in Thermostat).
        self._faulted_pages: Set[int] = set()
        self.total_sampled_faults = 0
        self.epochs = 0

    def region_of(self, page_indices: np.ndarray) -> np.ndarray:
        """Map page indices to region indices."""
        return np.asarray(page_indices) // self.config.region_pages

    # ------------------------------------------------------------------
    # Epoch protocol
    # ------------------------------------------------------------------

    def begin_epoch(self, rng: np.random.Generator) -> np.ndarray:
        """Poison a fresh random sample of regions; returns the sample."""
        k = max(1, int(round(self.config.sample_fraction * self.n_regions)))
        self._sampled = rng.choice(self.n_regions, size=min(k, self.n_regions),
                                   replace=False)
        self._epoch_faults = np.zeros(self._sampled.size, dtype=np.int64)
        self._faulted_pages.clear()
        return self._sampled.copy()

    def record_accesses(self, touched: np.ndarray) -> int:
        """Process one tick's accesses; returns faults taken this tick.

        Only the *first* access to each poisoned page faults (the fault
        handler restores the mapping); subsequent accesses are free — that
        is Thermostat's per-page overhead bound.
        """
        touched = np.asarray(touched)
        if touched.size == 0 or self._sampled.size == 0:
            return 0
        regions = self.region_of(touched)
        in_sample = np.isin(regions, self._sampled)
        candidates = np.unique(touched[in_sample])
        fresh = [
            int(p) for p in candidates if int(p) not in self._faulted_pages
        ]
        if not fresh:
            return 0
        self._faulted_pages.update(fresh)
        rank_of_region = {int(r): i for i, r in enumerate(self._sampled)}
        for page in fresh:
            rank = rank_of_region[page // self.config.region_pages]
            self._epoch_faults[rank] += 1
        faults = len(fresh)
        self.total_sampled_faults += faults
        return faults

    def end_epoch(self, now: int = 0) -> None:
        """Fold the epoch's fault counts into the per-region estimates."""
        alpha = self.config.ewma_alpha
        for rank, region in enumerate(self._sampled):
            observed = float(self._epoch_faults[rank])
            previous = self.estimated_rate[region]
            if np.isnan(previous):
                self.estimated_rate[region] = observed
            else:
                self.estimated_rate[region] = (
                    alpha * observed + (1 - alpha) * previous
                )
        self._sampled = np.zeros(0, dtype=np.int64)
        self._epoch_faults = np.zeros(0, dtype=np.int64)
        self.epochs += 1

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    @property
    def coverage_fraction(self) -> float:
        """Fraction of regions with at least one estimate so far."""
        return float(np.mean(~np.isnan(self.estimated_rate)))

    def cold_regions(self, max_faults_per_epoch: float = 0.0) -> np.ndarray:
        """Regions estimated at or below the access-rate limit.

        Unsampled regions are (conservatively) not classified cold.
        """
        with np.errstate(invalid="ignore"):
            mask = self.estimated_rate <= max_faults_per_epoch
        return np.flatnonzero(np.nan_to_num(mask, nan=False))

    def cold_page_mask(self, max_faults_per_epoch: float = 0.0) -> np.ndarray:
        """Per-page boolean mask of the cold classification."""
        mask = np.zeros(self.n_pages, dtype=bool)
        for region in self.cold_regions(max_faults_per_epoch):
            start = int(region) * self.config.region_pages
            mask[start : start + self.config.region_pages] = True
        return mask


# ----------------------------------------------------------------------
# Thermostat as a deployable ColdMemoryPolicy
# ----------------------------------------------------------------------
#
# The detector above operates on raw access streams, which the node agent
# never sees — it only gets per-interval promotion histograms.  To canary
# Thermostat through the same control plane as the paper's policy, the
# adapter below transplants Thermostat's two defining ideas to the
# histogram level:
#
# * **duty-cycled sampling** — only every ``sample_period_intervals``-th
#   control interval is observed (Thermostat samples a fraction of memory
#   per epoch; here a fraction of *time* is sampled instead, the same
#   coverage/overhead trade at the telemetry level);
# * **EWMA persistence** — sampled observations are folded into an
#   exponentially-weighted estimate that persists across unsampled
#   intervals, exactly as the detector's per-region rate estimates do.
#
# The adapter is deliberately deterministic (no RNG): the duty cycle is a
# fixed stride, so a canary decision replays bit-for-bit serial vs
# parallel — the property the fleet controller's chaos suite asserts.


@dataclass(frozen=True)
class ThermostatPolicyConfig:
    """Tunables of the policy-level Thermostat adapter.

    Attributes:
        sample_period_intervals: observe the kernel histograms only every
            N-th control interval (N=2 mirrors a 120 s epoch over the
            one-minute agent cadence); unsampled intervals reuse the
            persisted estimate.
        ewma_alpha: smoothing of the threshold estimate across sampled
            intervals (the detector's per-region EWMA, §7).
        warmup_seconds: zswap stays disabled this long after job start.
        history_length: sampled best thresholds retained for state
            hand-off on redeployment.
    """

    sample_period_intervals: int = 2
    ewma_alpha: float = 0.5
    warmup_seconds: int = 600
    history_length: int = 32

    def __post_init__(self) -> None:
        check_positive(self.sample_period_intervals, "sample_period_intervals")
        check_fraction(self.ewma_alpha, "ewma_alpha")
        require(self.warmup_seconds >= 0, "warmup_seconds must be >= 0")
        require(self.history_length >= 1, "history_length must be >= 1")


class ThermostatThresholdPolicy(ColdAgeThresholdPolicy):
    """Per-job Thermostat controller on the node-agent control surface.

    Shares :class:`ColdAgeThresholdPolicy`'s surface (``observe``,
    ``observe_zero``, ``threshold``, ``warmed_up``, ``reset``,
    ``inherit_state``) so the node agent drives it without knowing the
    algorithm changed.  Unsampled intervals skip the histogram read
    entirely; sampled ones fold the interval's best threshold into the
    EWMA estimate that :meth:`threshold` publishes.  Jobs whose estimate
    does not exist yet (never sampled, like the detector's never-sampled
    regions) are conservatively left uncompressed.
    """

    def __init__(
        self,
        config: ThermostatPolicyConfig,
        bins: AgeBins,
        slo: Optional[PromotionRateSlo] = None,
    ):
        base = ThresholdPolicyConfig(
            warmup_seconds=config.warmup_seconds,
            history_length=config.history_length,
            spike_reaction=False,
        )
        super().__init__(base, bins, slo)
        self.thermostat = config
        self._intervals = 0
        #: EWMA of sentinel-encoded sampled best thresholds (NaN = never
        #: sampled; values beyond the grid decode to "compress nothing").
        self._estimate = float("nan")

    def _sampled(self) -> bool:
        return self._intervals % self.thermostat.sample_period_intervals == 0

    def _fold(self, best: float) -> None:
        encoded = best if math.isfinite(best) else self._sentinel
        if math.isnan(self._estimate):
            self._estimate = encoded
        else:
            alpha = self.thermostat.ewma_alpha
            self._estimate = alpha * encoded + (1 - alpha) * self._estimate

    def observe(
        self,
        promotion_histogram: AgeHistogram,
        working_set_size_pages: float,
        interval_seconds: float = MINUTE,
    ) -> float:
        self._intervals += 1
        if not self._sampled():
            # Unsampled interval: Thermostat is not looking.  The warm-up
            # clock still advances; history and estimate are untouched.
            self._elapsed_seconds += int(interval_seconds)
            return self._last_best
        best = super().observe(
            promotion_histogram, working_set_size_pages, interval_seconds
        )
        self._fold(best)
        return best

    def observe_zero(self, interval_seconds: float = MINUTE) -> float:
        self._intervals += 1
        if not self._sampled():
            self._elapsed_seconds += int(interval_seconds)
            return self._last_best
        best = super().observe_zero(interval_seconds)
        self._fold(best)
        return best

    def threshold(self) -> float:
        from repro.core.threshold_policy import DISABLED

        if not self.warmed_up or math.isnan(self._estimate):
            return DISABLED
        if self._estimate > self.bins.max_threshold:
            return DISABLED
        # Snap up to the candidate grid, as the kernel requires.
        grid = self.bins.thresholds
        for candidate in grid:
            if candidate >= self._estimate:
                return float(candidate)
        return float(self.bins.max_threshold)

    def reset(self) -> None:
        super().reset()
        self._intervals = 0
        self._estimate = float("nan")

    def inherit_state(self, other: ColdAgeThresholdPolicy) -> None:
        """Adopt another controller's observations (cross-policy safe).

        From another Thermostat controller the EWMA estimate and duty-cycle
        phase carry over verbatim; from any other controller (e.g. the
        paper policy during a policy swap) the estimate is rebuilt by
        folding the inherited best-threshold history in arrival order —
        deterministic, and faithful to what Thermostat would have estimated
        had it sampled those intervals.
        """
        super().inherit_state(other)
        inherited_estimate = getattr(other, "_estimate", None)
        if inherited_estimate is not None:
            self._estimate = float(inherited_estimate)
            self._intervals = int(getattr(other, "_intervals", 0))
            return
        self._intervals = len(self._pool)
        self._estimate = float("nan")
        for best in self._pool:
            self._fold(best)


@dataclass(frozen=True)
class ThermostatPolicy(ColdMemoryPolicy):
    """Thermostat as a deployable policy (one-line swap at the seam).

    Attributes:
        config: the adapter tunables handed to every per-job controller.
    """

    config: ThermostatPolicyConfig = ThermostatPolicyConfig()
    name = "thermostat"

    def build(
        self, bins: AgeBins, slo: Optional[PromotionRateSlo] = None
    ) -> ThermostatThresholdPolicy:
        return ThermostatThresholdPolicy(self.config, bins, slo)

    def describe(self) -> str:
        return (
            f"thermostat(every {self.config.sample_period_intervals} "
            f"intervals, alpha={self.config.ewma_alpha:g})"
        )
