"""Units and physical constants shared across the simulator.

Everything in the simulator is expressed in a small set of base units:

* **memory** — bytes (with a 4 KiB page as the unit of migration),
* **time** — seconds (the simulator is discrete-time; see
  :mod:`repro.common.simtime`),
* **CPU work** — cycles (converted to seconds via a nominal clock rate).

These constants mirror the concrete values used by the paper: 4 KiB x86
pages, a 120 s ``kstaled`` scan period, 8-bit page ages (so a maximum
trackable age of 255 scans = 8.5 h), the 2990-byte zsmalloc payload cutoff
beyond which compression is counted as a loss, and the 0.2 %/min promotion
rate SLO.
"""

from __future__ import annotations

#: Size of one OS page in bytes (x86-64 base pages, as in the paper).
PAGE_SIZE = 4096

#: Bytes in one KiB / MiB / GiB.
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Seconds in one minute / hour / day.
MINUTE = 60
HOUR = 60 * MINUTE
DAY = 24 * HOUR

#: ``kstaled`` scan period (seconds).  The paper runs kstaled every 120 s.
KSTALED_SCAN_PERIOD = 120

#: Number of distinct page-age values representable with the paper's 8-bit
#: per-page age field.  Ages saturate at this value rather than wrapping.
MAX_PAGE_AGE_SCANS = 255

#: Maximum trackable age in seconds (255 scans x 120 s = 8.5 h).
MAX_PAGE_AGE_SECONDS = MAX_PAGE_AGE_SCANS * KSTALED_SCAN_PERIOD

#: zsmalloc payload cutoff: payloads larger than this (73 % of a 4 KiB page)
#: cost more in metadata than they save, so the page is marked
#: incompressible and rejected.
ZSMALLOC_MAX_PAYLOAD = 2990

#: The promotion-rate SLO: at most P percent of a job's working set may be
#: promoted (swapped back in) per minute.  The paper determined P = 0.2 %/min
#: through months-long A/B testing.
TARGET_PROMOTION_RATE_PCT_PER_MIN = 0.2

#: The minimum cold-age threshold (seconds).  A page younger than this is
#: never considered cold; the working set is defined as the pages accessed
#: within this window.
MIN_COLD_AGE_THRESHOLD = 120

#: Nominal CPU clock used to convert cycles <-> seconds (a 2.3 GHz Haswell
#: class server, per the paper's machine description in section 6).
CPU_HZ = 2.3e9


def pages_to_bytes(pages: float) -> float:
    """Convert a page count to bytes."""
    return pages * PAGE_SIZE


def bytes_to_pages(n_bytes: float) -> float:
    """Convert bytes to (possibly fractional) pages."""
    return n_bytes / PAGE_SIZE


def cycles_to_seconds(cycles: float, cpu_hz: float = CPU_HZ) -> float:
    """Convert CPU cycles to seconds at the given clock rate."""
    return cycles / cpu_hz


def seconds_to_cycles(seconds: float, cpu_hz: float = CPU_HZ) -> float:
    """Convert seconds of CPU time to cycles at the given clock rate."""
    return seconds * cpu_hz


def format_bytes(n_bytes: float) -> str:
    """Render a byte count with a binary-unit suffix, e.g. ``'1.50 GiB'``."""
    magnitude = abs(n_bytes)
    for suffix, scale in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if magnitude >= scale:
            return f"{n_bytes / scale:.2f} {suffix}"
    return f"{n_bytes:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration with the largest natural unit, e.g. ``'2.0 h'``."""
    magnitude = abs(seconds)
    for suffix, scale in (("d", DAY), ("h", HOUR), ("min", MINUTE)):
        if magnitude >= scale:
            return f"{seconds / scale:.1f} {suffix}"
    return f"{seconds:.1f} s"
