"""Multi-tier far memory (the §8 future-work extension)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import PAGE_SIZE
from repro.core.histograms import AgeHistogram, default_age_bins
from repro.kernel.tiers import (
    NVM_DEVICE,
    ZSSD_DEVICE,
    ZSWAP_ACCEL_DEVICE,
    ZSWAP_DEVICE,
    FarMemoryDevice,
    TieredFarMemory,
)


@pytest.fixture
def histograms(bins):
    cold = AgeHistogram(bins)
    # 1000 pages: 400 hot, 300 at ~10 min, 200 at ~1.5 h, 100 at ~6 h.
    cold.add_ages(
        np.concatenate(
            [
                np.zeros(400),
                np.full(300, 600.0),
                np.full(200, 5400.0),
                np.full(100, 21000.0),
            ]
        )
    )
    promo = AgeHistogram(bins)
    promo.add_ages(np.concatenate([np.full(30, 600.0), np.full(5, 5400.0)]))
    return cold, promo


class TestDevices:
    def test_presets_are_ordered_sanely(self):
        assert NVM_DEVICE.read_latency_seconds < ZSWAP_DEVICE.read_latency_seconds
        assert (
            ZSWAP_DEVICE.read_latency_seconds < ZSSD_DEVICE.read_latency_seconds
        )
        assert ZSSD_DEVICE.relative_cost_per_byte < (
            ZSWAP_DEVICE.relative_cost_per_byte
        )

    def test_accelerator_strictly_dominates_software(self):
        """The §8 claim: hardware compression improves both axes."""
        assert ZSWAP_ACCEL_DEVICE.read_latency_seconds < (
            ZSWAP_DEVICE.read_latency_seconds
        )
        assert ZSWAP_ACCEL_DEVICE.relative_cost_per_byte < (
            ZSWAP_DEVICE.relative_cost_per_byte
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FarMemoryDevice("x", read_latency_seconds=0,
                            relative_cost_per_byte=0.3)


class TestTieredAssignment:
    def test_pages_partitioned_by_age(self, histograms):
        cold, promo = histograms
        tiers = TieredFarMemory(
            [NVM_DEVICE, ZSWAP_DEVICE], thresholds_seconds=[480, 3840]
        )
        result = tiers.assign(cold, promo)
        # DRAM keeps the 400 hot pages, NVM the 300 at 10 min, zswap the
        # 300 older than 3840 s.
        assert result.pages_per_tier == (400, 300, 300)
        assert sum(result.pages_per_tier) == cold.total

    def test_single_tier_matches_zswap_view(self, histograms):
        cold, promo = histograms
        tiers = TieredFarMemory([ZSWAP_DEVICE], thresholds_seconds=[480])
        result = tiers.assign(cold, promo)
        assert result.pages_per_tier == (400 + 300 - 300, 600)

    def test_stall_accounts_latency_per_band(self, histograms):
        cold, promo = histograms
        tiers = TieredFarMemory(
            [NVM_DEVICE, ZSWAP_DEVICE], thresholds_seconds=[480, 3840]
        )
        result = tiers.assign(cold, promo)
        # 30 promos at 600s land in the NVM band; 5 at 5400s in zswap.
        expected = 30 * NVM_DEVICE.read_latency_seconds + (
            5 * ZSWAP_DEVICE.read_latency_seconds
        )
        assert result.expected_access_seconds_per_min == pytest.approx(expected)

    def test_cheaper_cold_tier_saves_more(self, histograms):
        cold, promo = histograms
        zswap_only = TieredFarMemory([ZSWAP_DEVICE], [480]).assign(cold, promo)
        with_flash = TieredFarMemory(
            [ZSWAP_DEVICE, ZSSD_DEVICE], [480, 3840]
        ).assign(cold, promo)
        assert (
            with_flash.dram_cost_saving_fraction
            > zswap_only.dram_cost_saving_fraction
        )

    def test_fixed_capacity_overflows_to_colder_tier(self, histograms):
        cold, promo = histograms
        tiny_nvm = FarMemoryDevice(
            "tiny NVM",
            read_latency_seconds=0.4e-6,
            relative_cost_per_byte=0.5,
            fixed_capacity_bytes=100 * PAGE_SIZE,
        )
        tiers = TieredFarMemory(
            [tiny_nvm, ZSWAP_DEVICE], thresholds_seconds=[480, 3840]
        )
        result = tiers.assign(cold, promo)
        # NVM holds only 100 of its 300-page band; 200 spill to zswap.
        assert result.pages_per_tier == (400, 100, 500)
        assert result.stranded_pages_per_tier == (0, 0, 0)

    def test_last_fixed_tier_strands(self, histograms):
        cold, promo = histograms
        tiny = FarMemoryDevice(
            "tiny flash",
            read_latency_seconds=20e-6,
            relative_cost_per_byte=0.05,
            fixed_capacity_bytes=50 * PAGE_SIZE,
        )
        result = TieredFarMemory([tiny], [3840]).assign(cold, promo)
        assert result.pages_per_tier[-1] == 50
        assert result.stranded_pages_per_tier[-1] == 250

    def test_thresholds_must_increase(self):
        with pytest.raises(ConfigurationError):
            TieredFarMemory([NVM_DEVICE, ZSWAP_DEVICE], [3840, 480])

    def test_accelerator_improves_both_metrics(self, histograms):
        """End-to-end §8 comparison: swapping in the accelerated device
        lowers stall and raises savings for the same placement."""
        cold, promo = histograms
        software = TieredFarMemory([ZSWAP_DEVICE], [480]).assign(cold, promo)
        accel = TieredFarMemory([ZSWAP_ACCEL_DEVICE], [480]).assign(cold, promo)
        assert accel.expected_access_seconds_per_min < (
            software.expected_access_seconds_per_min
        )
        assert accel.dram_cost_saving_fraction > (
            software.dram_cost_saving_fraction
        )
