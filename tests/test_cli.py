"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.clusters == 2
        assert args.func.__name__ == "cmd_quickstart"

    def test_fleet_arguments_parsed(self):
        args = build_parser().parse_args(
            ["quickstart", "--clusters", "5", "--hours", "2.5", "--seed", "9"]
        )
        assert args.clusters == 5
        assert args.hours == 2.5
        assert args.seed == 9

    def test_autotune_iterations(self):
        args = build_parser().parse_args(["autotune", "--iterations", "3"])
        assert args.iterations == 3

    def test_figures_output(self):
        args = build_parser().parse_args(["figures", "--output", "/tmp/x"])
        assert args.output == "/tmp/x"


class TestExecution:
    def test_quickstart_runs(self, capsys):
        code = main(
            ["quickstart", "--clusters", "1", "--machines", "1",
             "--jobs", "2", "--hours", "0.5", "--dram-gib", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "DRAM TCO saving" in out

    def test_traces_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = main(
            ["traces", "--clusters", "1", "--machines", "1", "--jobs", "2",
             "--hours", "0.5", "--dram-gib", "2", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        from repro.cluster.trace_db import TraceDatabase

        assert len(TraceDatabase.load_jsonl(out)) > 0

    def test_figures_writes_directory(self, tmp_path, capsys):
        code = main(
            ["figures", "--clusters", "1", "--machines", "2", "--jobs", "2",
             "--hours", "1", "--dram-gib", "2", "--output", str(tmp_path)]
        )
        assert code == 0
        written = {p.name for p in tmp_path.iterdir()}
        assert "fig1.txt" in written
        assert "fig3.txt" in written
