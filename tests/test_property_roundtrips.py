"""Cross-module property tests: roundtrips and conservation laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histograms import AgeBins, AgeHistogram, default_age_bins
from repro.kernel.compression import ContentProfile
from repro.kernel.memcg import MemCg, PageState
from repro.kernel.zsmalloc import ZsmallocArena
from repro.kernel.zswap import Zswap
from repro.model.trace import JobTrace, TraceEntry


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_pages=st.integers(min_value=1, max_value=300),
    compress_count=st.integers(min_value=0, max_value=300),
)
def test_zswap_compress_decompress_roundtrip(seed, n_pages, compress_count):
    """Property: compress-then-decompress restores exact page state and
    leaves the arena empty, for any page count and subset size."""
    rng = np.random.default_rng(seed)
    memcg = MemCg(
        "j", n_pages,
        ContentProfile(incompressible_fraction=0.0, min_ratio=1.5),
        default_age_bins(), rng,
    )
    idx = memcg.allocate(n_pages)
    zswap = Zswap(ZsmallocArena())

    subset = idx[: min(compress_count, n_pages)]
    stored = zswap.compress(memcg, subset)
    far = np.flatnonzero(memcg.far_mask())
    assert far.size == stored

    zswap.decompress(memcg, far)
    assert memcg.far_pages == 0
    assert zswap.arena.live_objects == 0
    assert (memcg.state[idx] == PageState.NEAR).all()
    # Promotion accounting saw exactly the stored pages.
    assert memcg.promoted_pages_total == stored


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    scans=st.integers(min_value=0, max_value=10),
    touch_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_scan_conserves_histogram_totals(seed, scans, touch_fraction):
    """Property: after any scan/touch interleaving, the cold-age snapshot
    counts exactly the resident pages and ages stay within the 8-bit cap."""
    rng = np.random.default_rng(seed)
    memcg = MemCg("j", 200, ContentProfile(), default_age_bins(), rng)
    idx = memcg.allocate(150)
    for _ in range(scans):
        touched = idx[rng.random(idx.size) < touch_fraction]
        memcg.touch(touched)
        memcg.scan_update()
    if scans:
        assert memcg.cold_age_histogram.total == memcg.resident_pages
    assert memcg.age_scans.max() <= 255
    assert (memcg.age_scans >= 0).all()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_entries=st.integers(min_value=1, max_value=10),
    wss=st.integers(min_value=0, max_value=10_000),
    cpu=st.floats(min_value=0.1, max_value=64.0),
)
def test_trace_entry_roundtrip_property(seed, n_entries, wss, cpu):
    """Property: serialize/deserialize preserves every trace field for
    arbitrary histogram contents."""
    rng = np.random.default_rng(seed)
    bins = default_age_bins()
    trace = JobTrace("job")
    for i in range(n_entries):
        promo = AgeHistogram(bins)
        promo.add_ages(rng.uniform(0, 40_000, size=int(rng.integers(0, 50))))
        cold = AgeHistogram(bins)
        cold.add_ages(rng.uniform(0, 40_000, size=int(rng.integers(0, 200))))
        trace.append(
            TraceEntry(
                job_id="job",
                machine_id=f"m{i}",
                time=i * 300,
                working_set_pages=wss,
                promotion_histogram=promo,
                cold_age_histogram=cold,
                resident_pages=cold.total,
                cpu_cores=cpu,
            )
        )
    rebuilt = JobTrace.from_dicts("job", trace.to_dicts())
    assert len(rebuilt) == len(trace)
    for original, restored in zip(trace.entries, rebuilt.entries):
        assert restored.time == original.time
        assert restored.machine_id == original.machine_id
        assert restored.working_set_pages == original.working_set_pages
        assert restored.cpu_cores == pytest.approx(original.cpu_cores)
        np.testing.assert_array_equal(
            restored.promotion_histogram.counts,
            original.promotion_histogram.counts,
        )
        np.testing.assert_array_equal(
            restored.cold_age_histogram.counts,
            original.cold_age_histogram.counts,
        )


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    incompressible=st.floats(min_value=0.0, max_value=1.0),
)
def test_compression_never_expands_accounting(seed, incompressible):
    """Property: for any compressibility mix, stored payload bytes never
    exceed the uncompressed size of the stored pages."""
    rng = np.random.default_rng(seed)
    memcg = MemCg(
        "j", 200,
        ContentProfile(incompressible_fraction=incompressible),
        default_age_bins(), rng,
    )
    idx = memcg.allocate(200)
    zswap = Zswap(ZsmallocArena())
    stored = zswap.compress(memcg, idx)
    assert zswap.arena.payload_bytes <= stored * 4096
    stats = zswap.stats_for("j")
    assert stats.pages_compressed + stats.pages_rejected == 200
    if stored:
        assert stats.mean_compression_ratio > 1.0
