"""Fork boundary with only picklable state: FLOW002 stays quiet."""


class Shard:
    def __init__(self, ticks: int) -> None:
        self.ticks = ticks
        self.done = False


def worker_main(ticks: int) -> None:
    shard = Shard(ticks)
    shard.done = True
