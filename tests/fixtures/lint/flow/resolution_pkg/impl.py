"""Resolution shapes: methods, inheritance, decorators, cycles, unknowns."""

import functools
import time

import mystery  # an out-of-package module: its calls stay unknown


class Base:
    def shared(self) -> int:
        return 1

    def template(self) -> int:
        # self-call resolved against the *runtime* subclass is out of
        # scope; the class scan resolves it on Base here.
        return self.shared()


class Child(Base):
    def run(self) -> int:
        # Inherited method: resolves to Base.shared via the base scan.
        return self.shared() + self.own()

    def own(self) -> int:
        return 2


def helper() -> int:
    return Child().run()


def use_local_type() -> int:
    child = Child()
    # Locally-typed receiver: resolves to Child.run.
    return child.run()


@functools.lru_cache(maxsize=None)
def decorated_clock() -> float:
    # Decorated functions are plain graph nodes; the source is recorded.
    return time.time()


def calls_decorated() -> float:
    return decorated_clock()


def calls_unknown() -> int:
    # Unknown callee: even though mystery.fetch might read a clock, the
    # lattice keeps this CLEAN — unknown never taints.
    return mystery.fetch()


def cycle_a(n: int) -> float:
    if n <= 0:
        return time.time()
    return cycle_b(n - 1)


def cycle_b(n: int) -> float:
    # Mutual recursion: the taint fixpoint must terminate and taint both.
    return cycle_a(n)
