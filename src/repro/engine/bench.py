"""The ``repro bench`` throughput harness behind ``BENCH_fleet.json``.

Times the same fleet workload twice — once through the serial
:meth:`WSC.run` loop, once through :class:`FleetEngine` — and reports
throughput (ticks/sec, simulated pages scanned per wall-clock second),
the parallel speedup, and whether the two runs produced identical
results.  ``docs/performance.md`` explains how to read the output.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Optional, Union

from repro.cluster.wsc import quickfleet
from repro.common.units import HOUR, MIB, PAGE_SIZE
from repro.common.validation import check_positive
from repro.engine.parallel import FleetEngine, default_worker_count
from repro.obs import MetricName, MetricRegistry, Tracer

__all__ = ["run_bench"]


def _build_fleet(clusters: int, machines: int, jobs: int, seed: int):
    return quickfleet(
        clusters=clusters,
        machines_per_cluster=machines,
        jobs_per_machine=jobs,
        seed=seed,
        machine_dram_gib=8.0,
        mean_cold_fraction=0.20,
        job_pages_range=((16 * MIB) // PAGE_SIZE, (64 * MIB) // PAGE_SIZE),
        churn_duration_range=(2 * HOUR, 12 * HOUR),
        registry=MetricRegistry(),
        tracer=Tracer(),
    )


def _pages_scanned(fleet) -> float:
    total = 0.0
    for (name, _labels), value in fleet.registry.baseline().items():
        if name == MetricName.PAGES_SCANNED_TOTAL:
            total += value
    return total


def run_bench(
    hours: float = 2.0,
    clusters: int = 4,
    machines: int = 2,
    jobs: int = 3,
    seed: int = 42,
    workers: Optional[int] = None,
    barrier_seconds: int = 60,
    output: Optional[Union[str, Path]] = None,
) -> Dict:
    """Run the serial-vs-parallel throughput comparison.

    Args:
        hours: simulated hours per run.
        clusters / machines / jobs: fleet shape (machines and jobs are
            per-cluster and per-machine respectively).
        seed: root seed; both runs use it, which is what makes the
            equivalence check meaningful.
        workers: parallel worker count (default: usable CPUs capped at 4,
            matching the acceptance target's 4-worker configuration).
        barrier_seconds: engine barrier interval.
        output: when given, the report is also written there as JSON
            (conventionally ``BENCH_fleet.json``).

    Returns:
        The report dict: fleet shape, per-mode wall seconds / ticks/sec /
        pages-scanned/sec, ``speedup``, and ``equivalent`` (identical
        coverage reports and SLI histories).
    """
    check_positive(hours, "hours")
    if workers is None:
        workers = min(4, default_worker_count())

    seconds = int(hours * HOUR)

    serial_fleet = _build_fleet(clusters, machines, jobs, seed)
    start = time.perf_counter()
    serial_fleet.run(seconds)
    serial_wall = time.perf_counter() - start

    parallel_fleet = _build_fleet(clusters, machines, jobs, seed)
    engine = FleetEngine(parallel_fleet, workers=workers,
                         barrier_seconds=barrier_seconds)
    start = time.perf_counter()
    stats = engine.run(seconds)
    parallel_wall = time.perf_counter() - start

    equivalent = (
        serial_fleet.coverage_report() == parallel_fleet.coverage_report()
        and serial_fleet.sli_history == parallel_fleet.sli_history
    )
    pages = _pages_scanned(serial_fleet)
    report = {
        "fleet": {
            "clusters": clusters,
            "machines_per_cluster": machines,
            "jobs_per_machine": jobs,
            "simulated_hours": hours,
            "seed": seed,
        },
        "host_cpus": default_worker_count(),
        "barrier_seconds": barrier_seconds,
        "ticks": stats.ticks,
        "serial": {
            "wall_seconds": round(serial_wall, 3),
            "ticks_per_second": round(stats.ticks / serial_wall, 2),
            "pages_scanned_per_second": round(pages / serial_wall, 0),
        },
        "parallel": {
            "mode": stats.mode,
            "workers": stats.workers,
            "barriers": stats.barriers,
            "fallback_reason": stats.fallback_reason,
            "wall_seconds": round(parallel_wall, 3),
            "ticks_per_second": round(stats.ticks / parallel_wall, 2),
            "pages_scanned_per_second": round(pages / parallel_wall, 0),
        },
        "speedup": round(serial_wall / parallel_wall, 3),
        "equivalent": equivalent,
    }
    if output is not None:
        Path(output).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    return report
