"""Deterministic cluster-to-worker shard planning.

Clusters are the unit of parallelism: during :meth:`WSC.run` they are
fully independent (the only cross-cluster objects — the trace database
and the fleet metric registry — are append-only sinks the engine merges
explicitly).  Shards are built with the classic longest-processing-time
greedy: heaviest cluster first onto the lightest shard, which is within
4/3 of optimal makespan and, unlike round-robin, stays balanced when
cluster sizes are skewed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.validation import check_positive, require

__all__ = ["ShardPlan", "plan_shards"]


@dataclass(frozen=True)
class ShardPlan:
    """One worker's share of the fleet.

    Attributes:
        cluster_indices: indices into the fleet's cluster list, ascending
            (workers tick their clusters in global cluster order so the
            serial drain order can be reconstructed exactly).
        weight: summed weight of the assigned clusters.
    """

    cluster_indices: Tuple[int, ...]
    weight: float


def plan_shards(
    weights: Sequence[float], workers: int
) -> List[ShardPlan]:
    """Partition clusters into at most ``workers`` balanced shards.

    Args:
        weights: per-cluster work estimate (e.g. machine count); index i
            is cluster i.
        workers: maximum shard count; empty shards are dropped, so the
            result has ``min(workers, len(weights))`` entries.

    Returns:
        Shard plans sorted by their smallest cluster index, each with
        ascending ``cluster_indices`` — a deterministic function of the
        inputs.
    """
    check_positive(workers, "workers")
    require(len(weights) > 0, "cannot shard zero clusters")
    n_shards = min(int(workers), len(weights))
    buckets: List[List[int]] = [[] for _ in range(n_shards)]
    loads = [0.0] * n_shards
    # Heaviest first; ties broken by cluster index for determinism.
    order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
    for i in order:
        lightest = min(range(n_shards), key=lambda s: (loads[s], s))
        buckets[lightest].append(i)
        loads[lightest] += float(weights[i])
    plans = [
        ShardPlan(cluster_indices=tuple(sorted(bucket)), weight=load)
        for bucket, load in zip(buckets, loads)
        if bucket
    ]
    plans.sort(key=lambda p: p.cluster_indices[0])
    return plans
