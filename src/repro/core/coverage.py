"""Cold-memory coverage — the paper's headline efficacy metric (§6.1).

Coverage is the fraction of *coverable* cold memory actually stored in far
memory::

    coverage = bytes stored compressed / bytes cold under the minimum
               cold-age threshold (120 s)

A coverage of 1.0 would mean every page idle for >= 120 s is compressed —
the zero-overhead upper bound.  The paper reports ~15 % with hand-tuned
parameters and ~20 % after autotuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.common.validation import check_non_negative

__all__ = ["CoverageSample", "cold_memory_coverage", "fleet_coverage"]


@dataclass(frozen=True)
class CoverageSample:
    """One job's (or machine's) coverage observation at a point in time.

    Attributes:
        far_memory_pages: pages currently stored compressed (counted at
            their uncompressed size — coverage is about how much cold data
            moved to the far tier, not about the compression ratio).
        cold_pages_at_min_threshold: pages idle for at least the minimum
            cold-age threshold, including the ones already in far memory.
        time: optional timestamp (seconds) for longitudinal series.
    """

    far_memory_pages: int
    cold_pages_at_min_threshold: int
    time: int = 0

    def __post_init__(self) -> None:
        check_non_negative(self.far_memory_pages, "far_memory_pages")
        check_non_negative(
            self.cold_pages_at_min_threshold, "cold_pages_at_min_threshold"
        )

    @property
    def coverage(self) -> float:
        """This sample's coverage ratio (0 when there is no cold memory)."""
        return cold_memory_coverage(
            self.far_memory_pages, self.cold_pages_at_min_threshold
        )


def cold_memory_coverage(far_memory_pages: float, cold_pages: float) -> float:
    """Coverage ratio for one observation; 0 when nothing is cold."""
    if cold_pages <= 0:
        return 0.0
    return min(1.0, far_memory_pages / cold_pages)


def fleet_coverage(samples: Iterable[CoverageSample]) -> float:
    """Fleet-level coverage: total far bytes over total cold bytes.

    This is a ratio of sums, not a mean of ratios — machines with more cold
    memory weigh more, matching how the paper aggregates (total size stored
    in far memory divided by total size of cold memory).
    """
    far = 0
    cold = 0
    for sample in samples:
        far += sample.far_memory_pages
        cold += sample.cold_pages_at_min_threshold
    return cold_memory_coverage(far, cold)


def coverage_timeseries(
    samples: Sequence[CoverageSample], window_seconds: int
) -> List[CoverageSample]:
    """Aggregate samples into fixed windows for longitudinal plots (Fig. 5).

    Samples inside each ``window_seconds`` bucket are summed; the returned
    samples carry the window's start time.
    """
    check_non_negative(window_seconds, "window_seconds")
    if window_seconds == 0:
        return list(samples)
    buckets = {}
    for sample in samples:
        window = (sample.time // window_seconds) * window_seconds
        far, cold = buckets.get(window, (0, 0))
        buckets[window] = (
            far + sample.far_memory_pages,
            cold + sample.cold_pages_at_min_threshold,
        )
    return [
        CoverageSample(far, cold, time=window)
        for window, (far, cold) in sorted(buckets.items())
    ]
