"""zswap: the compressed far-memory tier (paper §3, §5.1).

This is the simulator's equivalent of the augmented zswap the paper ships:
it compresses pages into the machine-global zsmalloc arena, rejects pages
whose payload exceeds the 2990-byte cutoff (marking them incompressible),
and decompresses pages on fault, keeping them decompressed thereafter.

All CPU time spent compressing, decompressing, and *failing* to compress
(the wasted cycles on incompressible data the paper calls out in §3.2) is
accounted per job, which is what Fig. 8 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.common.units import PAGE_SIZE, ZSMALLOC_MAX_PAYLOAD
from repro.kernel.compression import (
    DEFAULT_LATENCY_MODEL,
    CompressionLatencyModel,
)
from repro.kernel.memcg import MemCg
from repro.kernel.zsmalloc import ZsmallocArena
from repro.obs import (
    MetricName,
    MetricRegistry,
    Tracer,
    get_registry,
    get_tracer,
)

__all__ = ["Zswap", "ZswapJobStats"]


@dataclass
class ZswapJobStats:
    """Per-job zswap accounting (drives Fig. 8 and Fig. 9).

    Attributes:
        pages_compressed: successfully stored pages.
        pages_rejected: compression attempts that exceeded the cutoff.
        pages_decompressed: faults served from far memory.
        compress_seconds: CPU time compressing (including rejected tries).
        decompress_seconds: CPU time decompressing.
        payload_bytes_stored: sum of stored payload sizes (for ratios).
        decompress_latencies: per-page decompression latencies (seconds);
            a uniform reservoir sample (Algorithm R) of every latency the
            job ever saw, to bound memory without biasing percentiles
            toward warm-up behavior.
        latency_samples_seen: how many latencies were offered to the
            reservoir (the population size behind the sample).
    """

    pages_compressed: int = 0
    pages_rejected: int = 0
    pages_decompressed: int = 0
    compress_seconds: float = 0.0
    decompress_seconds: float = 0.0
    payload_bytes_stored: int = 0
    decompress_latencies: List[float] = field(default_factory=list)
    latency_samples_seen: int = 0

    #: Cap on retained latency samples per job.
    LATENCY_SAMPLE_CAP = 4096

    @property
    def mean_compression_ratio(self) -> float:
        """Uncompressed/compressed ratio over successfully stored pages."""
        if self.pages_compressed == 0:
            return 0.0
        return self.pages_compressed * PAGE_SIZE / self.payload_bytes_stored


class Zswap:
    """Machine-wide zswap instance over one zsmalloc arena.

    Args:
        arena: the machine's global compressed-data arena.
        latency_model: (de)compression cost model.
        max_payload_bytes: reject payloads above this (2990 B in the paper).
        max_pool_bytes: optional cap on the arena footprint (upstream
            zswap's ``max_pool_percent``); once reached, further stores are
            refused until promotions or job exits drain the pool.
        machine_id: label value for exported metrics ("" standalone).
        rng: seeded generator for the latency-sample reservoir (the
            owning machine passes a dedicated stream; standalone zswaps
            fall back to a fixed seed so replays stay deterministic).
        registry: metrics registry (defaults to the process-global one).
        tracer: span tracer (defaults to the process-global one).
    """

    def __init__(
        self,
        arena: ZsmallocArena,
        latency_model: CompressionLatencyModel = DEFAULT_LATENCY_MODEL,
        max_payload_bytes: int = ZSMALLOC_MAX_PAYLOAD,
        max_pool_bytes: int = 0,
        machine_id: str = "",
        rng: Optional[np.random.Generator] = None,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.arena = arena
        self.latency_model = latency_model
        self.max_payload_bytes = int(max_payload_bytes)
        self.max_pool_bytes = int(max_pool_bytes)
        self.machine_id = machine_id
        self._rng = (
            rng if rng is not None else np.random.default_rng(0xC01DA6E)
        )
        self.pool_limit_rejections = 0
        self.job_stats: Dict[str, ZswapJobStats] = {}

        registry = registry if registry is not None else get_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        self._bind_metrics(registry)

    def _bind_metrics(self, registry: MetricRegistry) -> None:
        label = dict(machine=self.machine_id)
        self._m_compressed = registry.counter(
            MetricName.PAGES_COMPRESSED_TOTAL,
            "Pages successfully stored into the zswap arena.", ("machine",)
        ).labels(**label)
        self._m_rejected = registry.counter(
            MetricName.PAGES_REJECTED_TOTAL,
            "Compression attempts over the incompressibility cutoff.",
            ("machine",)
        ).labels(**label)
        self._m_stored_bytes = registry.counter(
            MetricName.ZSWAP_STORED_BYTES_TOTAL,
            "Compressed payload bytes written to the arena.", ("machine",)
        ).labels(**label)
        self._m_pool_rejections = registry.counter(
            MetricName.ZSWAP_POOL_LIMIT_REJECTIONS_TOTAL,
            "Store attempts refused by the pool-size cap.", ("machine",)
        ).labels(**label)
        self._m_compress_cpu = registry.counter(
            MetricName.COMPRESS_CPU_SECONDS_TOTAL,
            "Modelled CPU seconds compressing (rejected tries included).",
            ("machine",)
        ).labels(**label)
        self._m_decompress_cpu = registry.counter(
            MetricName.DECOMPRESS_CPU_SECONDS_TOTAL,
            "Modelled CPU seconds decompressing on promotion faults.",
            ("machine",)
        ).labels(**label)

    def rebind_observability(self, registry: MetricRegistry,
                             tracer: Tracer) -> None:
        """Re-point metric handles and tracer after a cross-process move."""
        self._tracer = tracer
        self._bind_metrics(registry)

    def pool_full(self) -> bool:
        """True when the pool cap is set and the arena has reached it."""
        return (
            self.max_pool_bytes > 0
            and self.arena.footprint_bytes >= self.max_pool_bytes
        )

    def stats_for(self, job_id: str) -> ZswapJobStats:
        """The (created-on-demand) stats record for a job."""
        stats = self.job_stats.get(job_id)
        if stats is None:
            stats = ZswapJobStats()
            self.job_stats[job_id] = stats
        return stats

    # ------------------------------------------------------------------
    # Store path (kreclaimd -> zswap)
    # ------------------------------------------------------------------

    def compress(self, memcg: MemCg, indices: np.ndarray) -> int:
        """Try to move the given NEAR pages to far memory.

        Pages whose payload exceeds the cutoff are marked incompressible
        and stay NEAR (their compression cycles are still charged — that is
        the opportunity cost §3.2 describes).  Returns the number of pages
        actually stored.
        """
        indices = np.asarray(indices)
        if indices.size == 0:
            return 0
        if self.pool_full():
            # Pool cap reached: no cycles are burnt compressing pages that
            # cannot be stored (unlike the payload cutoff, this is known
            # before compressing).
            self.pool_limit_rejections += int(indices.size)
            self._m_pool_rejections.inc(int(indices.size))
            return 0

        with self._tracer.span("zswap.compress"):
            payloads = memcg.payload_bytes[indices]
            ok = payloads <= self.max_payload_bytes
            rejected = indices[~ok]
            accepted = indices[ok]

            if self.max_pool_bytes > 0 and accepted.size:
                # Clamp the batch to the remaining pool room; pages past the
                # cut are deferred (not compressed, no cycles, no state).
                room = self.max_pool_bytes - self.arena.footprint_bytes
                cumulative = np.cumsum(memcg.payload_bytes[accepted])
                keep = cumulative <= room
                deferred = int((~keep).sum())
                self.pool_limit_rejections += deferred
                self._m_pool_rejections.inc(deferred)
                accepted = accepted[keep]

            stats = self.stats_for(memcg.job_id)
            compress_seconds = self.latency_model.compress_seconds(
                int(accepted.size + rejected.size)
            )
            stats.compress_seconds += compress_seconds
            self._m_compress_cpu.inc(compress_seconds)

            if rejected.size:
                memcg.mark_incompressible(rejected)
                stats.pages_rejected += int(rejected.size)
                memcg.rejected_pages_total += int(rejected.size)
                self._m_rejected.inc(int(rejected.size))

            if accepted.size:
                accepted_payloads = memcg.payload_bytes[accepted]
                self.arena.store(accepted_payloads)
                memcg.mark_far(accepted)
                # Swapping out part of a huge mapping splits it (Linux
                # splits THPs before zswap sees them).
                touched_groups = np.unique(
                    memcg.huge_group[accepted][memcg.huge_group[accepted] >= 0]
                )
                for group in touched_groups:
                    memcg.split_huge(int(group))
                stats.pages_compressed += int(accepted.size)
                stats.payload_bytes_stored += int(accepted_payloads.sum())
                memcg.compressed_pages_total += int(accepted.size)
                self._m_compressed.inc(int(accepted.size))
                self._m_stored_bytes.inc(int(accepted_payloads.sum()))
        return int(accepted.size)

    # ------------------------------------------------------------------
    # Load path (page fault -> zswap)
    # ------------------------------------------------------------------

    def decompress(self, memcg: MemCg, indices: np.ndarray) -> float:
        """Fault far pages back to near memory (promotion).

        Pages are removed from the arena, flipped to NEAR, and kept
        decompressed (the paper avoids repeated decompression by leaving
        promoted pages uncompressed until they turn cold again).  Returns
        the total decompression latency incurred.
        """
        indices = np.asarray(indices)
        if indices.size == 0:
            return 0.0
        with self._tracer.span("zswap.decompress"):
            payloads = memcg.payload_bytes[indices]
            self.arena.release(payloads)
            memcg.mark_near(indices)
            memcg.record_promotions(indices)

            latencies = self.latency_model.decompress_seconds(payloads)
            stats = self.stats_for(memcg.job_id)
            stats.pages_decompressed += int(indices.size)
            total = float(latencies.sum())
            stats.decompress_seconds += total
            self._m_decompress_cpu.inc(total)
            self._sample_latencies(stats, latencies)
        return total

    def _sample_latencies(
        self, stats: ZswapJobStats, latencies: np.ndarray
    ) -> None:
        """Fold a latency batch into the job's reservoir (Algorithm R).

        Until the cap is reached every latency is kept; after that, the
        i-th latency ever seen replaces a uniformly-chosen reservoir slot
        with probability ``cap / (i + 1)``, so the retained sample stays
        uniform over the job's whole history instead of freezing on the
        first ``cap`` (warm-up) promotions.
        """
        cap = ZswapJobStats.LATENCY_SAMPLE_CAP
        reservoir = stats.decompress_latencies
        seen = stats.latency_samples_seen
        values = latencies.tolist()
        fill = min(len(values), cap - len(reservoir))
        if fill > 0:
            reservoir.extend(values[:fill])
        tail = values[fill:]
        if tail:
            # Candidate slots for the whole tail in one draw: sample i
            # (0-based index over the job's lifetime) lands in slot j
            # drawn uniformly from [0, i]; it is kept only when j < cap.
            indices = np.arange(seen + fill, seen + len(values))
            slots = self._rng.integers(0, indices + 1)
            for value, slot in zip(tail, slots.tolist()):
                if slot < cap:
                    reservoir[slot] = value
        stats.latency_samples_seen = seen + len(values)

    # ------------------------------------------------------------------
    # Teardown path (job exit)
    # ------------------------------------------------------------------

    def evict_job(self, memcg: MemCg, far_indices: np.ndarray) -> None:
        """Drop a dying job's far pages from the arena without promoting."""
        far_indices = np.asarray(far_indices)
        if far_indices.size == 0:
            return
        self.arena.release(memcg.payload_bytes[far_indices])
