"""Promotion-rate SLO and working-set arithmetic."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core.histograms import AgeHistogram
from repro.core.slo import (
    PromotionRateSlo,
    normalized_promotion_rate,
    promotions_per_minute,
    working_set_pages,
)


class TestPromotionRateSlo:
    def test_paper_defaults(self):
        slo = PromotionRateSlo()
        assert slo.target_pct_per_min == pytest.approx(0.2)
        assert slo.min_cold_age_seconds == 120

    def test_allowed_budget(self):
        slo = PromotionRateSlo(target_pct_per_min=0.2)
        # 0.2% of a 10_000-page working set = 20 pages/min.
        assert slo.allowed_promotions_per_min(10_000) == pytest.approx(20.0)

    def test_is_met(self):
        slo = PromotionRateSlo(target_pct_per_min=0.2)
        assert slo.is_met(19.9, 10_000)
        assert slo.is_met(20.0, 10_000)
        assert not slo.is_met(20.1, 10_000)

    def test_empty_working_set(self):
        slo = PromotionRateSlo()
        assert slo.is_met(0, 0)
        assert not slo.is_met(1, 0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PromotionRateSlo(target_pct_per_min=0)
        with pytest.raises(ConfigurationError):
            PromotionRateSlo(min_cold_age_seconds=-1)


class TestWorkingSet:
    def test_working_set_excludes_cold_pages(self, bins):
        hist = AgeHistogram(bins)
        # 3 young pages, 2 pages at 150s, 1 at 500s.
        hist.add_ages(np.array([0, 10, 60, 150, 150, 500]))
        assert working_set_pages(hist) == 3

    def test_working_set_with_custom_window(self, bins):
        hist = AgeHistogram(bins)
        hist.add_ages(np.array([0, 150, 150, 500]))
        assert working_set_pages(hist, min_cold_age_seconds=240) == 3

    def test_prefix_sum_matches_bin_by_bin_count(self, bins):
        # The hot-path prefix sum must agree with the definitional
        # per-bin accumulation for every candidate window.
        rng = np.random.default_rng(5)
        hist = AgeHistogram(bins)
        hist.add_ages(rng.uniform(0, 40_000, size=2_000))
        for window in bins.thresholds:
            below = hist.young_count + sum(
                int(count)
                for threshold, count in zip(bins.thresholds, hist.counts)
                if threshold < window
            )
            assert working_set_pages(hist, min_cold_age_seconds=window) \
                == below

    def test_returns_a_python_int(self, bins):
        hist = AgeHistogram(bins)
        hist.add_ages(np.array([0.0, 150.0]))
        result = working_set_pages(hist)
        assert type(result) is int


class TestNormalizedRate:
    def test_basic(self):
        assert normalized_promotion_rate(20, 10_000) == pytest.approx(0.2)

    def test_zero_promotions(self):
        assert normalized_promotion_rate(0, 0) == 0.0

    def test_promotions_without_working_set_is_inf(self):
        assert normalized_promotion_rate(5, 0) == float("inf")


class TestPromotionsPerMinute:
    def test_scales_by_interval(self, bins):
        hist = AgeHistogram(bins)
        hist.add_ages(np.array([300.0] * 10))
        # Ten cold-page accesses over 5 minutes = 2/min at T=120 or 240.
        assert promotions_per_minute(hist, 120, 300) == pytest.approx(2.0)
        assert promotions_per_minute(hist, 240, 300) == pytest.approx(2.0)
        # At T=480 those accesses would not have been promotions.
        assert promotions_per_minute(hist, 480, 300) == 0.0

    def test_rejects_bad_interval(self, bins):
        with pytest.raises(ConfigurationError):
            promotions_per_minute(AgeHistogram(bins), 120, 0)
