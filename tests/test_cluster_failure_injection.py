"""Machine failure injection: the zswap failure-domain argument."""

import pytest

from repro.common.errors import SchedulingError
from repro.cluster import quickfleet


def make_fleet():
    return quickfleet(
        clusters=1,
        machines_per_cluster=3,
        jobs_per_machine=2,
        seed=41,
        warmup_hours=0.5,
    )


class TestFailMachine:
    def test_jobs_reschedule_to_survivors(self):
        fleet = make_fleet()
        cluster = fleet.clusters[0]
        victim_machine = cluster.machines[0].machine_id
        victims = cluster.scheduler.jobs_on(victim_machine)
        assert victims

        unplaced = cluster.fail_machine(victim_machine)
        assert unplaced == []
        # Every victim restarted somewhere else.
        for machine_id in (
            cluster.scheduler.placements[j] for j in cluster.running
        ):
            assert machine_id != victim_machine
        assert len(cluster.running) == 6

    def test_failure_confined_to_one_machine(self):
        """The paper's reliability claim: other machines' far memory and
        jobs are untouched by a crash."""
        fleet = make_fleet()
        cluster = fleet.clusters[0]
        survivor = cluster.machines[1]
        far_before = survivor.far_pages
        jobs_before = set(survivor.memcgs)
        cluster.fail_machine(cluster.machines[0].machine_id)
        assert survivor.far_pages >= far_before  # nothing was dropped
        assert jobs_before <= set(survivor.memcgs)

    def test_failed_machine_excluded_from_placement(self):
        fleet = make_fleet()
        cluster = fleet.clusters[0]
        failed = cluster.machines[0].machine_id
        cluster.fail_machine(failed)
        assert failed in cluster.scheduler.offline
        assert cluster.scheduler.jobs_on(failed) == []

    def test_evictions_recorded_against_slo(self):
        fleet = make_fleet()
        cluster = fleet.clusters[0]
        victims = cluster.scheduler.jobs_on(cluster.machines[0].machine_id)
        cluster.fail_machine(cluster.machines[0].machine_id)
        for job_id in victims:
            assert job_id in cluster.eviction_slo_jobs()

    def test_repair_restores_placement(self):
        fleet = make_fleet()
        cluster = fleet.clusters[0]
        failed = cluster.machines[0].machine_id
        cluster.fail_machine(failed)
        cluster.repair_machine(failed)
        assert failed not in cluster.scheduler.offline

    def test_unknown_machine_rejected(self):
        fleet = make_fleet()
        with pytest.raises(SchedulingError):
            fleet.clusters[0].fail_machine("ghost")

    def test_fleet_keeps_running_after_failure(self):
        fleet = make_fleet()
        cluster = fleet.clusters[0]
        cluster.fail_machine(cluster.machines[0].machine_id)
        fleet.run(1800)
        # Simulation stays consistent post-failure.
        for machine in cluster.machines[1:]:
            assert machine.free_bytes >= 0
            assert machine.far_pages == machine.arena.live_objects
