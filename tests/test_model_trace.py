"""Trace entry schema and serialization."""

import numpy as np
import pytest

from repro.common.errors import TraceError
from repro.core.histograms import AgeBins, AgeHistogram, default_age_bins
from repro.model.trace import TRACE_PERIOD_SECONDS, JobTrace, TraceEntry


def make_histograms(bins=None):
    bins = bins if bins is not None else default_age_bins()
    promo = AgeHistogram(bins)
    promo.add_ages(np.array([150.0, 500.0]))
    cold = AgeHistogram(bins)
    cold.add_ages(np.array([150.0] * 10 + [5.0] * 40))
    return promo, cold


def make_entry(**overrides):
    promo, cold = make_histograms()
    fields = dict(
        job_id="j",
        machine_id="m0",
        time=0,
        working_set_pages=40,
        promotion_histogram=promo,
        cold_age_histogram=cold,
        resident_pages=50,
        cpu_cores=1.5,
    )
    fields.update(overrides)
    return TraceEntry(**fields)


class TestTraceEntry:
    def test_period_constant(self):
        assert TRACE_PERIOD_SECONDS == 300

    def test_mismatched_grids_rejected(self):
        promo, _ = make_histograms()
        _, cold = make_histograms(AgeBins((120, 480)))
        with pytest.raises(TraceError):
            make_entry(promotion_histogram=promo, cold_age_histogram=cold)

    def test_negative_counts_rejected(self):
        with pytest.raises(TraceError):
            make_entry(working_set_pages=-1)

    def test_dict_roundtrip_preserves_everything(self):
        entry = make_entry()
        restored = TraceEntry.from_dict(entry.to_dict())
        assert restored.job_id == entry.job_id
        assert restored.machine_id == entry.machine_id
        assert restored.cpu_cores == entry.cpu_cores
        np.testing.assert_array_equal(
            restored.promotion_histogram.counts,
            entry.promotion_histogram.counts,
        )
        np.testing.assert_array_equal(
            restored.cold_age_histogram.counts,
            entry.cold_age_histogram.counts,
        )
        assert (
            restored.cold_age_histogram.young_count
            == entry.cold_age_histogram.young_count
        )

    def test_from_dict_missing_field(self):
        data = make_entry().to_dict()
        del data["working_set_pages"]
        with pytest.raises(TraceError, match="working_set_pages"):
            TraceEntry.from_dict(data)

    def test_from_dict_bad_histogram_width(self):
        data = make_entry().to_dict()
        data["promotion_counts"] = [1, 2]
        with pytest.raises(TraceError):
            TraceEntry.from_dict(data)

    def test_bins_property(self):
        assert make_entry().bins.min_threshold == 120


class TestJobTraceOrdering:
    def test_append_in_order(self):
        trace = JobTrace("j")
        trace.append(make_entry(time=0))
        trace.append(make_entry(time=300))
        trace.append(make_entry(time=300))  # equal times allowed
        assert len(trace) == 3

    def test_out_of_order_rejected(self):
        trace = JobTrace("j")
        trace.append(make_entry(time=300))
        with pytest.raises(TraceError):
            trace.append(make_entry(time=0))

    def test_iteration(self):
        trace = JobTrace("j")
        trace.append(make_entry(time=0))
        assert [e.time for e in trace] == [0]
