"""Chaos integration: fault scenarios replay identically serial vs
parallel, telemetry survives sink outages, and the SLO holds under an
incompressible storm."""

import pytest

from repro.cluster import quickfleet
from repro.common.rng import SeedSequenceFactory
from repro.common.units import HOUR
from repro.engine import FleetEngine, fork_available
from repro.faults import (
    ALL_MACHINES,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    attach_scenario,
)
from repro.obs import MetricRegistry, Tracer


def make_fleet(seed=21, clusters=2):
    return quickfleet(
        clusters=clusters,
        machines_per_cluster=2,
        jobs_per_machine=3,
        seed=seed,
        registry=MetricRegistry(),
        tracer=Tracer(),
    )


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestMixedScenarioEngineEquivalence:
    """The acceptance scenario — crash + sink outage + incompressible
    storm — must produce identical results under both engines."""

    DURATION = 2 * HOUR

    @pytest.fixture(scope="class")
    def pair(self):
        serial = make_fleet()
        parallel = make_fleet()
        for fleet in (serial, parallel):
            attach_scenario(fleet, "mixed", self.DURATION, seed=5)
        serial.run(self.DURATION)
        stats = FleetEngine(parallel, workers=2).run(self.DURATION)
        return serial, parallel, stats

    def test_parallel_path_taken_without_fallbacks(self, pair):
        _, _, stats = pair
        assert stats.mode == "parallel"
        assert stats.shard_fallbacks == 0

    def test_faults_actually_fired(self, pair):
        serial, parallel, _ = pair
        for fleet in (serial, parallel):
            injected = sum(
                c.fault_injector.faults_injected for c in fleet.clusters
            )
            assert injected >= 3  # crash + outage + storm per cluster
            assert fleet.registry.value("repro_faults_injected_total") > 0

    def test_sli_histories_identical(self, pair):
        serial, parallel, _ = pair
        assert len(serial.sli_history) > 0
        assert serial.sli_history == parallel.sli_history

    def test_coverage_reports_identical(self, pair):
        serial, parallel, _ = pair
        assert serial.coverage_report() == parallel.coverage_report()

    def test_traces_identical_per_job(self, pair):
        serial, parallel, _ = pair
        assert serial.trace_db.job_ids == parallel.trace_db.job_ids
        for job_id in serial.trace_db.job_ids:
            a = [e.to_dict()
                 for e in serial.trace_db.trace_for(job_id).entries]
            b = [e.to_dict()
                 for e in parallel.trace_db.trace_for(job_id).entries]
            assert a == b

    def test_fault_events_identical(self, pair):
        serial, parallel, _ = pair
        for cs, cp in zip(serial.clusters, parallel.clusters):
            a = [(e.time, e.payload) for e in cs.events.of_kind("faults")]
            b = [(e.time, e.payload) for e in cp.events.of_kind("faults")]
            assert a and a == b


class TestSinkOutageRecovery:
    """An outage delays telemetry; after the sink heals, nothing is lost."""

    DURATION = 2 * HOUR

    def run_pair(self):
        baseline = make_fleet(seed=33, clusters=1)
        chaotic = make_fleet(seed=33, clusters=1)
        plan = FaultPlan(events=(
            FaultEvent(time=1800, kind=FaultKind.SINK_OUTAGE,
                       duration=1800, target=ALL_MACHINES),
        ))
        chaotic.clusters[0].attach_fault_injector(
            FaultInjector(plan, SeedSequenceFactory(5))
        )
        baseline.run(self.DURATION)
        chaotic.run(self.DURATION)
        return baseline, chaotic

    def test_no_entries_lost_after_heal(self):
        baseline, chaotic = self.run_pair()
        registry = chaotic.registry
        assert registry.value("repro_telemetry_sink_outages_total") > 0
        spilled = registry.value("repro_telemetry_spilled_entries_total")
        assert spilled > 0
        assert registry.value(
            "repro_telemetry_replayed_entries_total") == spilled
        assert registry.value("repro_telemetry_dropped_entries_total") == 0
        for exporter in chaotic.clusters[0].exporters.values():
            assert not exporter.sink_degraded

        # The delivered traces are exactly the fault-free ones.
        assert baseline.trace_db.job_ids == chaotic.trace_db.job_ids
        for job_id in baseline.trace_db.job_ids:
            a = [e.to_dict()
                 for e in baseline.trace_db.trace_for(job_id).entries]
            b = [e.to_dict()
                 for e in chaotic.trace_db.trace_for(job_id).entries]
            assert a == b


class TestStormSloCompliance:
    """During a fleet-wide incompressible storm the controller degrades
    *coverage*, never the promotion SLO: rejected compressions rise and
    far-memory coverage falls, while the promotion-rate SLI stays no
    worse than a fault-free run of the same fleet.  (The absolute 0.2
    %/min target is a steady-state fleet number; a 2-hour toy fleet's
    p98 is dominated by warm-up transients even fault-free, so the SLO
    check is the *impact* vs baseline — the same comparison the
    ``repro chaos`` CLI reports.)"""

    DURATION = 2 * HOUR

    def test_storm_degrades_coverage_not_the_slo(self):
        baseline = make_fleet(seed=44, clusters=1)
        storm = make_fleet(seed=44, clusters=1)
        attach_scenario(storm, "storm", self.DURATION, seed=6)
        baseline.run(self.DURATION)
        storm.run(self.DURATION)
        assert sum(
            c.fault_injector.faults_injected for c in storm.clusters
        ) > 0

        # The storm visibly bit: more rejections, less coverage.
        assert storm.registry.value(
            "repro_pages_rejected_total"
        ) > baseline.registry.value("repro_pages_rejected_total")
        base_report = baseline.coverage_report()
        storm_report = storm.coverage_report()
        assert storm_report["coverage"] < base_report["coverage"]

        # ...but the promotion-rate SLI did not degrade: fewer pages in
        # zswap can only mean fewer promotions, and the threshold
        # controller keeps the rate at (or below) the fault-free level.
        assert (
            storm_report["promotion_rate_p98_pct_per_min"]
            <= base_report["promotion_rate_p98_pct_per_min"]
        )
