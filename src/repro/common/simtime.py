"""Discrete simulation clock.

The whole system advances in fixed *ticks* (default 60 s, the node agent's
control period).  Components that run at coarser periods (kstaled scans every
120 s, telemetry every 300 s) decide on each tick whether they are due.

:class:`Clock` is deliberately dumb — it only tracks "now" — while
:class:`PeriodicSchedule` answers "is this component due at the current
tick?" without accumulating drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.validation import check_positive

__all__ = ["Clock", "PeriodicSchedule", "DEFAULT_TICK_SECONDS"]

#: Default simulator tick: one node-agent control period (60 s).
DEFAULT_TICK_SECONDS = 60


@dataclass
class Clock:
    """Monotonic simulation clock advancing in fixed ticks.

    Attributes:
        tick_seconds: duration of one tick.
        now: current simulation time in seconds (multiple of tick_seconds).
    """

    tick_seconds: int = DEFAULT_TICK_SECONDS
    now: int = 0

    def __post_init__(self) -> None:
        check_positive(self.tick_seconds, "tick_seconds")

    @property
    def tick_index(self) -> int:
        """Number of whole ticks elapsed since time zero."""
        return self.now // self.tick_seconds

    def advance(self, ticks: int = 1) -> int:
        """Move the clock forward by ``ticks`` ticks; returns the new time."""
        if ticks < 0:
            raise ValueError(f"cannot advance clock by {ticks} ticks")
        self.now += ticks * self.tick_seconds
        return self.now


@dataclass
class PeriodicSchedule:
    """Fires every ``period_seconds``, aligned to multiples of the period.

    ``due(now)`` is edge-triggered: it returns True at most once per period
    boundary, tracking the last time it fired.

    Attributes:
        period_seconds: firing period.
        offset_seconds: phase offset of the first firing.
    """

    period_seconds: int
    offset_seconds: int = 0
    _last_fired: int = field(default=-1, repr=False)

    def __post_init__(self) -> None:
        check_positive(self.period_seconds, "period_seconds")
        if self.offset_seconds < 0:
            raise ValueError("offset_seconds must be non-negative")

    def due(self, now: int) -> bool:
        """Return True if a period boundary has been crossed since last fire."""
        if now < self.offset_seconds:
            return False
        boundary = ((now - self.offset_seconds) // self.period_seconds) * (
            self.period_seconds
        ) + self.offset_seconds
        if boundary > self._last_fired:
            self._last_fired = boundary
            return True
        return False

    def reset(self) -> None:
        """Forget firing history (e.g., when a job restarts)."""
        self._last_fired = -1
