"""Memory cgroups: vectorized per-job page state (paper §5.1).

Jobs are isolated in memcgs.  Each memcg owns a flat array of page slots;
per-page metadata lives in parallel numpy arrays (the simulator's
``struct page``):

* ``age_scans`` — the 8-bit page age in kstaled scans, saturating at 255;
* ``accessed`` — the PTE accessed bit, set by :meth:`MemCg.touch` (the MMU)
  and cleared by the kstaled scan;
* ``state`` — NEAR (resident in DRAM) or FAR (compressed in zswap);
* ``incompressible`` — set when zswap's payload cutoff rejected the page;
  cleared when the scan finds the page dirtied (paper: "cleared when
  kstaled detects any of the PTEs associated with the page have become
  dirty");
* ``unevictable`` — mlocked or otherwise off the LRU; never compressed;
* ``payload_bytes`` — intrinsic lzo payload size, fixed at allocation
  (rewritten on dirtying writes, since the content changed).

The memcg also carries the two per-job kernel histograms (cold-age snapshot
and cumulative promotion histogram) plus the knobs the node agent sets:
the cold-age threshold and the soft limit protecting the working set.
"""

from __future__ import annotations

import enum
import numpy as np

from repro.checks.invariants import check_memcg_histogram, invariants_enabled
from repro.common.errors import SimulationError
from repro.common.units import (
    KSTALED_SCAN_PERIOD,
    MAX_PAGE_AGE_SCANS,
    PAGE_SIZE,
)
from repro.common.validation import check_positive, require
from repro.core.histograms import AgeBins, AgeHistogram
from repro.core.threshold_policy import DISABLED
from repro.kernel.compression import ContentProfile

__all__ = ["PageState", "MemCg"]

#: Sentinel in the per-slot histogram-bin cache: slot contributes nothing
#: to the cold-age snapshot (not resident at the last scan).
_HIST_NO_PAGE = -2
#: Sentinel for the young bucket (age below the first candidate threshold);
#: matches the -1 that :meth:`AgeBins.bin_of_age` returns.
_HIST_YOUNG = -1


class PageState(enum.IntEnum):
    """Tier a page currently occupies."""

    NEAR = 0  #: uncompressed in DRAM
    FAR = 1  #: compressed in the zswap arena


# Plain-int copies for the accounting hot paths: ``PageState.NEAR`` goes
# through ``EnumType.__getattr__`` on every lookup, which is measurable
# when every machine reads tier counts every tick.  Values are identical
# (IntEnum), so numpy comparisons are unchanged.
_NEAR = int(PageState.NEAR)
_FAR = int(PageState.FAR)


class MemCg:
    """One job's memory cgroup.

    Args:
        job_id: identifier of the owning job.
        capacity_pages: maximum resident pages (the memcg limit).
        content_profile: compressibility distribution of this job's data.
        bins: candidate cold-age threshold grid shared fleet-wide.
        rng: random stream for payload sampling.
        scan_period: kstaled scan period in seconds.
    """

    def __init__(
        self,
        job_id: str,
        capacity_pages: int,
        content_profile: ContentProfile,
        bins: AgeBins,
        rng: np.random.Generator,
        scan_period: int = KSTALED_SCAN_PERIOD,
    ):
        check_positive(capacity_pages, "capacity_pages")
        check_positive(scan_period, "scan_period")
        self.job_id = job_id
        self.capacity_pages = int(capacity_pages)
        self.content_profile = content_profile
        self.bins = bins
        self.scan_period = int(scan_period)
        self._rng = rng

        n = self.capacity_pages
        self.resident = np.zeros(n, dtype=bool)
        self.age_scans = np.zeros(n, dtype=np.int32)
        self.accessed = np.zeros(n, dtype=bool)
        self.state = np.zeros(n, dtype=np.uint8)
        self.incompressible = np.zeros(n, dtype=bool)
        self.dirtied = np.zeros(n, dtype=bool)
        self.unevictable = np.zeros(n, dtype=bool)
        self.payload_bytes = np.zeros(n, dtype=np.int32)
        #: Linux-style two-list LRU state: True = active list.  The scan
        #: demotes idle active pages and re-activates accessed inactive
        #: ones; reclaim prefers the inactive list.
        self.lru_active = np.zeros(n, dtype=bool)
        #: Huge-page (THP) grouping: -1 = base page; otherwise the group
        #: id (start slot of the 2 MiB mapping).  A huge mapping has ONE
        #: accessed/dirty bit for all 512 pages — the resolution loss the
        #: paper contrasts with Thermostat's huge-page-only design.
        self.huge_group = np.full(n, -1, dtype=np.int64)

        #: Kernel-exported histograms (§5.1): the cold-age histogram is a
        #: snapshot updated each scan; the promotion histogram accumulates
        #: from job start and is diffed by the node agent.
        self.cold_age_histogram = AgeHistogram(bins)
        self.promotion_histogram = AgeHistogram(bins)
        #: Per-slot bin each page contributed to the cold-age snapshot at
        #: the last scan (``_HIST_NO_PAGE`` = nothing, ``_HIST_YOUNG`` =
        #: the young bucket).  Lets the scan update only the bins of pages
        #: whose bucket changed instead of rebuilding the histogram.
        self._hist_bin = np.full(n, _HIST_NO_PAGE, dtype=np.int16)
        #: Age (in scans) -> histogram bin lookup table; ages saturate at
        #: ``MAX_PAGE_AGE_SCANS`` so the table covers every reachable age.
        self._bin_lut = bins.bin_of_age(
            np.arange(MAX_PAGE_AGE_SCANS + 1, dtype=np.int64) * self.scan_period
        ).astype(np.int16)

        #: Cached static reclaim-eligibility mask (resident & NEAR &
        #: evictable & compressible); every mutator of those arrays calls
        #: :meth:`invalidate_reclaim_cache`.  Code that writes the state
        #: arrays directly (tests, experiments) must do the same.
        self._reclaim_mask = np.zeros(n, dtype=bool)
        self._reclaim_mask_valid = False

        #: Node-agent-controlled knobs.
        self.cold_age_threshold: float = DISABLED
        self.soft_limit_pages: int = 0
        self.zswap_enabled: bool = True

        #: Fault flag: set (by fault injection, or a kernel detecting its
        #: own accounting damage) when the promotion/cold-age histograms
        #: can no longer be trusted.  The node agent consumes the flag on
        #: its next control round by disabling zswap and restarting the
        #: job's warm-up; the histogram *data* is left intact.
        self.histograms_corrupt: bool = False

        #: Monotonic count of entries ever added to the promotion
        #: histogram (scan-time would-be promotions and actual promotion
        #: faults alike).  The node agent compares it against its last
        #: seen value to skip the histogram copy/diff on rounds where the
        #: histogram cannot have changed; both kernel backends maintain
        #: it identically.
        self.promo_hist_events = 0

        #: SLI counters (monotonic; readers keep their own last-seen copy).
        self.promoted_pages_total = 0
        self.compressed_pages_total = 0
        self.rejected_pages_total = 0
        self.start_time: int = 0

        #: Optional bound metric series (e.g. a machine-labelled
        #: ``repro_pages_promoted_total`` counter); the owning machine
        #: injects it at :meth:`Machine.add_job` time so memcgs stay
        #: constructible without any observability context.
        self.promoted_counter = None

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        """Total resident pages (near + far)."""
        return int(np.count_nonzero(self.resident))

    @property
    def near_pages(self) -> int:
        """Pages held uncompressed in DRAM."""
        return int(np.count_nonzero(self.resident & (self.state == _NEAR)))

    @property
    def far_pages(self) -> int:
        """Pages held compressed in the zswap arena."""
        return int(np.count_nonzero(self.resident & (self.state == _FAR)))

    @property
    def near_bytes(self) -> int:
        """DRAM consumed by uncompressed pages."""
        return self.near_pages * PAGE_SIZE

    def far_mask(self) -> np.ndarray:
        """Boolean mask over slots currently in far memory."""
        return self.resident & (self.state == _FAR)

    def cold_pages(self, threshold_seconds: float) -> int:
        """Resident pages idle for at least ``threshold_seconds``.

        Counts from live page ages (not the histogram snapshot), so it is
        exact at any instant; includes pages already in far memory, matching
        the paper's coverage denominator.
        """
        threshold_scans = int(np.ceil(threshold_seconds / self.scan_period))
        return int(
            np.count_nonzero(self.resident & (self.age_scans >= threshold_scans))
        )

    # ------------------------------------------------------------------
    # Page lifecycle
    # ------------------------------------------------------------------

    def allocate(self, n_pages: int) -> np.ndarray:
        """Allocate ``n_pages`` new resident pages; returns their indices.

        New pages start NEAR, age 0, accessed (the allocating store touched
        them), with freshly sampled payload sizes.

        Raises:
            SimulationError: if the memcg lacks free slots (the caller — the
                machine — is responsible for enforcing memory limits before
                allocating).
        """
        if n_pages == 0:
            return np.zeros(0, dtype=np.int64)
        free = np.flatnonzero(~self.resident)
        if free.size < n_pages:
            raise SimulationError(
                f"memcg {self.job_id}: requested {n_pages} pages but only "
                f"{free.size} slots free of {self.capacity_pages}"
            )
        idx = free[:n_pages]
        self.resident[idx] = True
        self.age_scans[idx] = 0
        self.accessed[idx] = True
        self.lru_active[idx] = True
        self.state[idx] = PageState.NEAR
        self.incompressible[idx] = False
        self.dirtied[idx] = True
        self.unevictable[idx] = False
        self.payload_bytes[idx] = self.content_profile.sample_payload_bytes(
            n_pages, self._rng
        )
        self.invalidate_reclaim_cache()
        return idx

    def release(self, indices: np.ndarray) -> np.ndarray:
        """Free pages; returns the subset that was in far memory.

        The caller must release the returned far pages from the zswap arena
        (the memcg does not own the arena).
        """
        indices = np.asarray(indices)
        if indices.size == 0:
            return indices
        require(bool(self.resident[indices].all()), "releasing non-resident pages")
        far = indices[self.state[indices] == _FAR]
        self.resident[indices] = False
        self.accessed[indices] = False
        self.state[indices] = PageState.NEAR
        self.invalidate_reclaim_cache()
        return far

    def touch(self, indices: np.ndarray, write: bool = False) -> np.ndarray:
        """Simulate the MMU: mark pages accessed; report far-page faults.

        Args:
            indices: page slots being read or written.
            write: if True, pages are also dirtied (clears incompressible
                state at the next scan and resamples payload content).

        Returns:
            Indices of touched pages that were in far memory — the caller
            must route them through zswap decompression (promotion).
        """
        indices = np.asarray(indices)
        if indices.size == 0:
            return indices
        live = indices[self.resident[indices]]
        self.accessed[live] = True
        if write:
            self.dirtied[live] = True
        return live[self.state[live] == _FAR]

    def record_promotions(self, indices: np.ndarray) -> None:
        """Account faults on far pages: age-at-access into the promotion
        histogram, reset ages, bump the SLI counter.

        Called by zswap *after* it decompressed the pages and flipped their
        state back to NEAR.
        """
        indices = np.asarray(indices)
        if indices.size == 0:
            return
        ages_seconds = self.age_scans[indices] * self.scan_period
        self.promotion_histogram.add_ages(ages_seconds)
        self.promo_hist_events += int(indices.size)
        self.age_scans[indices] = 0
        self.promoted_pages_total += int(indices.size)
        if self.promoted_counter is not None:
            self.promoted_counter.inc(int(indices.size))

    def map_huge(self, start: int, pages_per_huge: int = 512) -> None:
        """Back a 2 MiB-aligned range with one huge mapping.

        All pages in ``[start, start + pages_per_huge)`` must be resident
        NEAR pages; afterwards they share a single PTE accessed/dirty bit
        at scan time.

        Raises:
            SimulationError: if the range is not fully resident/NEAR or
                overlaps an existing huge mapping.
        """
        check_positive(pages_per_huge, "pages_per_huge")
        stop = start + pages_per_huge
        require(
            0 <= start and stop <= self.capacity_pages,
            f"huge range [{start}, {stop}) outside the memcg",
        )
        window = slice(start, stop)
        if not (
            self.resident[window].all()
            and (self.state[window] == PageState.NEAR).all()
        ):
            raise SimulationError(
                f"huge range [{start}, {stop}) must be fully resident NEAR"
            )
        if (self.huge_group[window] >= 0).any():
            raise SimulationError(
                f"huge range [{start}, {stop}) overlaps an existing mapping"
            )
        self.huge_group[window] = start

    def split_huge(self, group: int) -> None:
        """Split a huge mapping back to base pages (THP split)."""
        self.huge_group[self.huge_group == group] = -1

    def _propagate_huge_bits(self) -> None:
        """Share accessed/dirty bits within each huge mapping.

        The MMU sets one bit on the PMD; any touched page makes the whole
        mapping look accessed (and dirtied, for writes) to the scan.
        """
        hp = np.flatnonzero(self.resident & (self.huge_group >= 0))
        if hp.size == 0:
            return
        groups = self.huge_group[hp]
        for bits in (self.accessed, self.dirtied):
            aggregate = np.zeros(self.capacity_pages, dtype=bool)
            np.logical_or.at(aggregate, groups, bits[hp])
            bits[hp] = aggregate[groups]

    def mlock(self, indices: np.ndarray) -> None:
        """Pin pages: they leave the LRU and are never compressed."""
        self.unevictable[np.asarray(indices)] = True
        self.invalidate_reclaim_cache()

    def munlock(self, indices: np.ndarray) -> None:
        """Unpin previously mlocked pages."""
        self.unevictable[np.asarray(indices)] = False
        self.invalidate_reclaim_cache()

    # ------------------------------------------------------------------
    # Tier transitions (zswap hooks)
    # ------------------------------------------------------------------

    def mark_far(self, indices: np.ndarray) -> None:
        """Move pages to the FAR tier (zswap stored them).

        Swap-out unmaps the page; any pending PTE dirty state was captured
        in the payload that was just stored, so the dirty bit clears.
        """
        self.state[indices] = PageState.FAR
        self.dirtied[indices] = False
        self.invalidate_reclaim_cache()

    def mark_near(self, indices: np.ndarray) -> None:
        """Move pages back to the NEAR tier (zswap decompressed them)."""
        self.state[indices] = PageState.NEAR
        self.invalidate_reclaim_cache()

    def mark_incompressible(self, indices: np.ndarray) -> None:
        """Flag pages whose compression attempt was rejected."""
        self.incompressible[indices] = True
        self.invalidate_reclaim_cache()

    # ------------------------------------------------------------------
    # Reclaim candidacy
    # ------------------------------------------------------------------

    def invalidate_reclaim_cache(self) -> None:
        """Mark the cached reclaim-eligibility mask stale.

        Every method that touches ``resident``/``state``/``unevictable``/
        ``incompressible`` calls this; code writing those arrays directly
        must call it too, or :meth:`reclaim_candidates` may serve stale
        results.
        """
        self._reclaim_mask_valid = False

    def reclaim_candidates(self, threshold_seconds: float) -> np.ndarray:
        """Slots eligible for compression under the given threshold.

        Eligible = resident, NEAR, evictable, not marked incompressible,
        and idle for at least the threshold.  Mirrors kreclaimd's LRU walk:
        unevictable/mlocked pages are skipped, as are pages whose previous
        compression attempt was rejected.

        The threshold-independent part of the mask only changes when pages
        allocate, free, change tier, or get (un)pinned, so it is cached
        under a dirty flag and combined with the age test per call.
        """
        if not np.isfinite(threshold_seconds):
            return np.zeros(0, dtype=np.int64)
        threshold_scans = int(np.ceil(threshold_seconds / self.scan_period))
        if not self._reclaim_mask_valid:
            np.logical_and(self.resident, self.state == _NEAR,
                           out=self._reclaim_mask)
            self._reclaim_mask &= ~self.unevictable
            self._reclaim_mask &= ~self.incompressible
            self._reclaim_mask_valid = True
        return np.flatnonzero(
            self._reclaim_mask & (self.age_scans >= threshold_scans)
        )

    def reclaim_order(self, candidates: np.ndarray) -> np.ndarray:
        """Order candidates the way kreclaimd walks the LRU.

        Inactive-list pages come before (stale) active-list ones; within a
        list, oldest first.  ``np.lexsort`` sorts by the last key first.
        """
        candidates = np.asarray(candidates)
        if candidates.size == 0:
            return candidates
        order = np.lexsort(
            (-self.age_scans[candidates], self.lru_active[candidates])
        )
        return candidates[order]

    # ------------------------------------------------------------------
    # kstaled hooks
    # ------------------------------------------------------------------

    def scan_update(self) -> None:
        """One kstaled pass over this memcg (paper §5.1).

        For each resident page: if the accessed bit is set, record the
        page's previous age in the promotion histogram and reset the age;
        otherwise increment the age (saturating at 255 scans).  Dirtied
        pages shed their incompressible mark and get fresh payload content.
        Finally rebuild the cold-age histogram snapshot.
        """
        self._propagate_huge_bits()
        res = self.resident
        acc = res & self.accessed
        idle = res & ~self.accessed

        prev_age_seconds = self.age_scans[acc] * self.scan_period
        self.promotion_histogram.add_ages(prev_age_seconds)
        self.promo_hist_events += int(prev_age_seconds.size)

        self.age_scans[acc] = 0
        self.age_scans[idle] = np.minimum(
            self.age_scans[idle] + 1, MAX_PAGE_AGE_SCANS
        )
        # Two-list LRU maintenance: accessed pages (re-)activate; active
        # pages that missed a whole scan drop to the inactive list.
        self.lru_active[acc] = True
        self.lru_active[idle] = False
        self.accessed[res] = False

        # Only NEAR pages can have live PTE dirty bits: swap-out removed the
        # mapping of FAR pages (and compression consumed their dirty state).
        dirty = res & self.dirtied & (self.state == _NEAR)
        n_dirty = int(np.count_nonzero(dirty))
        if n_dirty:
            self.incompressible[dirty] = False
            self.payload_bytes[dirty] = self.content_profile.sample_payload_bytes(
                n_dirty, self._rng
            )
            self.invalidate_reclaim_cache()
        self.dirtied[res] = False

        self._update_cold_histogram()
        if invariants_enabled():
            check_memcg_histogram(self)

    def _update_cold_histogram(self) -> None:
        """Fold age changes into the cold-age snapshot incrementally.

        Each slot's contribution at the previous scan is cached in
        ``_hist_bin``; only slots whose bin changed are subtracted and
        re-added.  A memcg where nothing moved (no touches, every page at
        the saturated age, no churn) exits without touching the histogram
        at all — the idle-job fast path.  The result is always identical
        to :meth:`_rebuild_cold_histogram`.
        """
        new_bins = np.full(self.capacity_pages, _HIST_NO_PAGE, dtype=np.int16)
        res = self.resident
        ages = np.minimum(self.age_scans[res], MAX_PAGE_AGE_SCANS)
        new_bins[res] = self._bin_lut[ages]
        changed = new_bins != self._hist_bin
        if not changed.any():
            return
        old = self._hist_bin[changed]
        new = new_bins[changed]
        hist = self.cold_age_histogram
        old_binned = old[old >= 0]
        if old_binned.size:
            hist.counts -= np.bincount(old_binned, minlength=len(self.bins))
        hist.young_count -= int((old == _HIST_YOUNG).sum())
        new_binned = new[new >= 0]
        if new_binned.size:
            hist.counts += np.bincount(new_binned, minlength=len(self.bins))
        hist.young_count += int((new == _HIST_YOUNG).sum())
        # In-place so the cache array keeps its identity: the columnar
        # kernel aliases ``_hist_bin`` into a machine-wide pool, and a
        # rebind here would silently detach the memcg from the pool.
        self._hist_bin[:] = new_bins

    def _rebuild_cold_histogram(self) -> None:
        """Snapshot page ages into the cold-age histogram from scratch.

        Kept as the ground-truth (and cache-reseeding) path; the scan uses
        the incremental :meth:`_update_cold_histogram`.
        """
        self.cold_age_histogram.clear()
        res = self.resident
        ages = np.minimum(self.age_scans[res], MAX_PAGE_AGE_SCANS)
        self._hist_bin.fill(_HIST_NO_PAGE)
        self._hist_bin[res] = self._bin_lut[ages]
        binned = self._hist_bin[res]
        self.cold_age_histogram.young_count = int((binned == _HIST_YOUNG).sum())
        valid = binned[binned >= 0]
        if valid.size:
            self.cold_age_histogram.counts += np.bincount(
                valid, minlength=len(self.bins)
            )
