"""Parameter search spaces for the autotuner (paper §5.3).

The tunables the paper exposes are ``K`` (the history percentile) and ``S``
(the zswap warm-up delay); the space is designed to grow as more parameters
are added ("the search space grows exponentially as we add more
parameters").  Parameters map to/from the unit cube, which is where the GP
lives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.common.validation import require
from repro.core.threshold_policy import ThresholdPolicyConfig

__all__ = [
    "Parameter",
    "ContinuousParameter",
    "IntegerParameter",
    "SearchSpace",
    "far_memory_search_space",
]


@dataclass(frozen=True)
class Parameter:
    """One box-bounded parameter.

    Attributes:
        name: parameter name (must be unique in a space).
        low / high: inclusive bounds.
        log_scale: search in log space (for scale-like parameters).
    """

    name: str
    low: float
    high: float
    log_scale: bool = False

    def __post_init__(self) -> None:
        require(self.high > self.low, f"{self.name}: high must exceed low")
        if self.log_scale:
            require(self.low > 0, f"{self.name}: log scale needs low > 0")

    def to_unit(self, value: float) -> float:
        """Map a value into [0, 1]."""
        if self.log_scale:
            return float(
                (np.log(value) - np.log(self.low))
                / (np.log(self.high) - np.log(self.low))
            )
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        """Map a unit-cube coordinate back to parameter units."""
        u = float(np.clip(u, 0.0, 1.0))
        if self.log_scale:
            return float(
                np.exp(np.log(self.low) + u * (np.log(self.high) - np.log(self.low)))
            )
        return self.low + u * (self.high - self.low)


@dataclass(frozen=True)
class ContinuousParameter(Parameter):
    """A real-valued parameter."""


@dataclass(frozen=True)
class IntegerParameter(Parameter):
    """An integer parameter (rounded on the way out of the unit cube)."""

    def from_unit(self, u: float) -> float:
        return float(int(round(super().from_unit(u))))


class SearchSpace:
    """An ordered set of parameters with unit-cube conversion."""

    def __init__(self, parameters: Sequence[Parameter]):
        require(len(parameters) > 0, "search space cannot be empty")
        names = [p.name for p in parameters]
        require(len(set(names)) == len(names), "duplicate parameter names")
        self.parameters = list(parameters)

    @property
    def dim(self) -> int:
        """Dimensionality of the space."""
        return len(self.parameters)

    @property
    def names(self) -> List[str]:
        """Parameter names in order."""
        return [p.name for p in self.parameters]

    def to_unit(self, values: Dict[str, float]) -> np.ndarray:
        """Encode a configuration dict as a unit-cube point."""
        return np.array(
            [p.to_unit(values[p.name]) for p in self.parameters], dtype=np.float64
        )

    def from_unit(self, u: np.ndarray) -> Dict[str, float]:
        """Decode a unit-cube point into a configuration dict."""
        u = np.asarray(u, dtype=np.float64).ravel()
        require(u.size == self.dim, f"point has {u.size} dims, space has {self.dim}")
        return {p.name: p.from_unit(coord) for p, coord in zip(self.parameters, u)}

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Quasi-uniform unit-cube samples (Latin hypercube), shape (n, d)."""
        grid = (np.arange(n)[:, None] + rng.random((n, self.dim))) / n
        for d in range(self.dim):
            rng.shuffle(grid[:, d])
        return grid


def far_memory_search_space(
    k_bounds: tuple = (50.0, 99.9),
    s_bounds: tuple = (60, 7200),
) -> SearchSpace:
    """The paper's (K, S) space.

    K in percent; S in seconds (log scale — warm-up effects are
    multiplicative in job lifetime).
    """
    return SearchSpace(
        [
            ContinuousParameter("percentile_k", k_bounds[0], k_bounds[1]),
            IntegerParameter("warmup_seconds", s_bounds[0], s_bounds[1],
                             log_scale=True),
        ]
    )


def config_from_values(values: Dict[str, float]) -> ThresholdPolicyConfig:
    """Build a policy config from decoded search-space values."""
    return ThresholdPolicyConfig(
        percentile_k=float(values["percentile_k"]),
        warmup_seconds=int(values["warmup_seconds"]),
    )
