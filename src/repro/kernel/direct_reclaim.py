"""Reactive direct reclaim — the Linux-default baseline (paper §3.2).

Stock zswap only engages on *direct reclaim*: when an allocation finds the
machine out of memory, the faulting process synchronously compresses pages
until the allocation fits.  The paper rejects this mode for WSCs because
(1) decompression overhead is unbounded, (2) last-minute compression bursts
hurt tail latency, and (3) no savings materialize until machines saturate.

We implement it faithfully so the proactive-vs-reactive ablation bench can
reproduce that finding.  Direct reclaim respects each memcg's *soft limit*
(the node agent pins it at the job's working-set size) — the kernel never
reclaims a job below its soft limit.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.common.units import PAGE_SIZE
from repro.kernel.memcg import MemCg, PageState
from repro.kernel.zswap import Zswap

__all__ = ["DirectReclaim"]


class DirectReclaim:
    """Synchronous, allocation-path reclaim.

    Args:
        zswap: the machine's zswap instance.
    """

    def __init__(self, zswap: Zswap):
        self.zswap = zswap
        self.invocations = 0
        self.pages_reclaimed = 0
        #: Wall-clock seconds allocation paths spent stalled compressing —
        #: the tail-latency poison the paper measured.  Keyed per invocation.
        self.stall_seconds_total = 0.0

    def reclaim(
        self, memcgs: Iterable[MemCg], needed_bytes: int
    ) -> Tuple[int, float]:
        """Compress pages until ~``needed_bytes`` of DRAM can be released.

        Walks memcgs' LRU tails oldest-first, skipping pages protected by
        soft limits.  Unlike kreclaimd there is no cold-age threshold: under
        memory pressure the kernel takes whatever is least recently used.

        Returns:
            ``(bytes_freed_estimate, stall_seconds)`` — freed bytes are
            estimated as (page size - payload) per stored page.
        """
        self.invocations += 1
        freed = 0
        stall = 0.0
        progress = True
        while freed < needed_bytes and progress:
            progress = False
            for memcg in memcgs:
                if freed >= needed_bytes:
                    break
                protected = max(0, memcg.soft_limit_pages)
                reclaimable = memcg.near_pages - protected
                if reclaimable <= 0:
                    continue
                mask = (
                    memcg.resident
                    & (memcg.state == PageState.NEAR)
                    & ~memcg.unevictable
                    & ~memcg.incompressible
                )
                candidates = np.flatnonzero(mask)
                if candidates.size == 0:
                    continue
                order = np.argsort(memcg.age_scans[candidates])[::-1]
                candidates = candidates[order][:reclaimable]
                # Take roughly what is still needed assuming ~3x compression,
                # then measure the true footprint delta; the outer loop
                # retries if compression under-delivered.
                still_needed_pages = int(
                    np.ceil((needed_bytes - freed) / (PAGE_SIZE * 2 / 3))
                )
                candidates = candidates[: max(1, still_needed_pages)]
                footprint_before = self.zswap.arena.footprint_bytes
                before_seconds = self.zswap.stats_for(
                    memcg.job_id
                ).compress_seconds
                stored = self.zswap.compress(memcg, candidates)
                stall += (
                    self.zswap.stats_for(memcg.job_id).compress_seconds
                    - before_seconds
                )
                footprint_added = (
                    self.zswap.arena.footprint_bytes - footprint_before
                )
                freed += stored * PAGE_SIZE - footprint_added
                self.pages_reclaimed += stored
                if stored > 0:
                    progress = True
        self.stall_seconds_total += stall
        return freed, stall
