#!/usr/bin/env python3
"""A throughput-oriented ML training pipeline under far memory.

The paper's introduction contrasts latency-sensitive frontends with
"throughput-oriented (e.g., machine learning training pipelines)" jobs.
Training is the adversarial case for age-based cold detection: each epoch
sequentially sweeps the whole dataset, so between sweeps *everything* looks
cold — then the next epoch touches all of it at once.  This example shows
the §4.3 controller's two defences working together:

* the per-minute best threshold collapses to "compress nothing useful"
  when a sweep storms through pages of every age;
* the K-th percentile of history plus spike escalation keeps the threshold
  high enough that the hot training set is not repeatedly compressed, while
  the genuinely frozen data (old checkpoints, stale shards) still moves to
  far memory.

Run:
    python examples/ml_training_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.agent import NodeAgent
from repro.analysis import render_table
from repro.common.rng import SeedSequenceFactory
from repro.common.units import HOUR, MIB, PAGE_SIZE
from repro.core import ThresholdPolicyConfig
from repro.kernel import ContentProfile, Machine, MachineConfig
from repro.workloads import ScanPattern

SIM_HOURS = 10
DRAM = 512 * MIB


def main() -> None:
    seeds = SeedSequenceFactory(33)
    machine = Machine("trainer", MachineConfig(dram_bytes=DRAM), seeds=seeds)
    agent = NodeAgent(
        machine,
        ThresholdPolicyConfig(percentile_k=98, warmup_seconds=600),
    )
    rng = np.random.default_rng(33)

    # The training set: swept once per epoch (90 min epochs, 30 min sweep).
    dataset_pages = int(0.5 * DRAM / PAGE_SIZE)
    machine.add_job("dataset", dataset_pages,
                    ContentProfile(median_ratio=4.0,
                                   incompressible_fraction=0.05))
    dataset_map = machine.allocate("dataset", dataset_pages)
    sweep = ScanPattern(dataset_pages, period_seconds=90 * 60,
                        sweep_seconds=30 * 60)

    # Stale state: checkpoints and old shards, touched almost never.
    stale_pages = int(0.25 * DRAM / PAGE_SIZE)
    machine.add_job("checkpoints", stale_pages,
                    ContentProfile(median_ratio=3.0,
                                   incompressible_fraction=0.2))
    machine.allocate("checkpoints", stale_pages)

    print(f"Training for {SIM_HOURS} simulated hours "
          f"({SIM_HOURS * 60 // 90} epochs)...\n")
    epoch_promotions = []
    last_promoted = 0
    for t in range(0, SIM_HOURS * HOUR, 60):
        reads, writes = sweep.step(t, 60, rng)
        if reads.size:
            machine.touch("dataset", dataset_map[reads])
        machine.tick(t)
        agent.maybe_control(t)
        if t % (90 * 60) == 0 and t > 0:
            stats = machine.zswap.stats_for("dataset")
            epoch_promotions.append(stats.pages_decompressed - last_promoted)
            last_promoted = stats.pages_decompressed

    dataset = machine.memcgs["dataset"]
    checkpoints = machine.memcgs["checkpoints"]
    dataset_stats = machine.zswap.stats_for("dataset")

    print(render_table(
        ["job", "pages", "in far memory", "compressions", "promotions"],
        [
            ("dataset (swept hourly)", dataset_pages,
             f"{dataset.far_pages} "
             f"({dataset.far_pages / dataset_pages:.0%})",
             dataset_stats.pages_compressed,
             dataset_stats.pages_decompressed),
            ("checkpoints (frozen)", stale_pages,
             f"{checkpoints.far_pages} "
             f"({checkpoints.far_pages / stale_pages:.0%})",
             machine.zswap.stats_for("checkpoints").pages_compressed,
             machine.zswap.stats_for("checkpoints").pages_decompressed),
        ],
        title="Far-memory placement after training",
    ))

    threshold = dataset.cold_age_threshold
    print(f"\n  dataset cold-age threshold settled at: "
          f"{'disabled' if not np.isfinite(threshold) else f'{threshold:.0f}s'}")
    print(f"  checkpoints threshold: "
          f"{checkpoints.cold_age_threshold:.0f}s")
    if epoch_promotions:
        series = ", ".join(f"{p:,}" for p in epoch_promotions)
        print(f"  promotions per epoch (dataset): {series}")
        print("  (the controller learns the sweep after the first epochs "
              "and stops thrashing)")
    print(
        "\nThe controller learned the sweep: the frozen checkpoint job is"
        "\ncompressed aggressively while the periodically-swept dataset is"
        "\nleft (mostly) uncompressed instead of thrashing through zswap."
    )


if __name__ == "__main__":
    main()
