"""Named content profiles: what kind of bytes a job keeps in memory.

The paper notes compressibility is a property of the data: textual/struct
data compresses ~3x, while multimedia and encrypted end-user content is
incompressible even when cold (31 % of cold memory fleet-wide).  These
presets give the fleet generator realistic per-job diversity whose mixture
lands on the fleet-wide Fig. 9a distribution.
"""

from __future__ import annotations

from typing import Dict

from repro.kernel.compression import ContentProfile

__all__ = ["CONTENT_PROFILES", "profile_for"]

#: Named presets, keyed by the dominant data kind of a job.
CONTENT_PROFILES: Dict[str, ContentProfile] = {
    # Logs, protos, HTML — compresses well, small incompressible residue.
    "text": ContentProfile(
        median_ratio=4.0, sigma=0.30, incompressible_fraction=0.10
    ),
    # Mixed serving state: the fleet-typical job.
    "mixed": ContentProfile(
        median_ratio=3.0, sigma=0.35, incompressible_fraction=0.31
    ),
    # In-memory caches of already-compressed or binary blobs.
    "binary": ContentProfile(
        median_ratio=2.2, sigma=0.30, incompressible_fraction=0.45
    ),
    # Video/image buffers, encrypted user content: nearly incompressible.
    "multimedia": ContentProfile(
        median_ratio=1.6, sigma=0.25, incompressible_fraction=0.85
    ),
    # Numeric/ML feature data: highly regular, compresses very well.
    "numeric": ContentProfile(
        median_ratio=5.0, sigma=0.40, incompressible_fraction=0.08
    ),
}


def profile_for(kind: str) -> ContentProfile:
    """Look up a preset; raises ``KeyError`` with the known names."""
    try:
        return CONTENT_PROFILES[kind]
    except KeyError:
        raise KeyError(
            f"unknown content kind {kind!r}; known: {sorted(CONTENT_PROFILES)}"
        ) from None
