"""Calls through the package re-export (resolution_pkg.helper)."""

from resolution_pkg import helper


def through_reexport() -> int:
    return helper()
