"""OBS001 positive fixture: names absent from the central registries."""


def bind(registry, log):
    counter = registry.counter(
        "repro_pages_scaned_total",  # finding: typo'd metric name
        "Typo'd help.",
    )
    log.record(0, "schduler.evict")  # finding: typo'd event kind
    return counter
