"""Figure 6: cold-memory coverage distribution across machines.

Paper: like the cold-memory distribution of Fig. 2, per-machine coverage
varies widely even within one cluster — the flexibility argument for
software-defined capacity.  We regenerate the per-cluster violin summary.
"""

from __future__ import annotations

from repro.analysis import (
    per_machine_coverage_by_cluster,
    render_violins,
    violin_stats,
)


def test_fig6_coverage_distribution(benchmark, paper_fleet, save_result):
    groups = benchmark(per_machine_coverage_by_cluster, paper_fleet)

    coverages = [c for group in groups.values() for c in group]
    assert coverages
    assert all(0.0 <= c <= 1.0 for c in coverages)
    # Every machine with cold memory achieved some coverage.
    assert min(coverages) > 0.0
    # And machines are not identical (the Fig. 6 point).
    assert max(coverages) - min(coverages) > 0.02

    save_result(
        "fig6_coverage_distribution",
        render_violins(
            {name: violin_stats(c) for name, c in groups.items() if c},
            title="Fig. 6 — per-machine cold memory coverage by cluster",
        ),
    )
