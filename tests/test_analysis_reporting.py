"""Text rendering of tables, CDFs, and violins."""

from repro.analysis.distributions import violin_stats
from repro.analysis.reporting import (
    render_cdf,
    render_series,
    render_table,
    render_violins,
)


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(
            ["name", "value"], [("a", 1.0), ("bb", 22.5)], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out

    def test_float_formatting(self):
        out = render_table(["x"], [(0.123456789,)])
        assert "0.1235" in out


class TestRenderCdf:
    def test_quantiles_present(self):
        out = render_cdf(list(range(100)), "latency", unit="us")
        assert "latency" in out
        assert "p98" in out
        assert "us" in out

    def test_empty_samples(self):
        assert "(no samples)" in render_cdf([], "nothing")


class TestRenderViolins:
    def test_groups_rendered(self):
        groups = {
            "cluster-a": violin_stats([0.1, 0.2, 0.3]),
            "cluster-b": violin_stats([0.4, 0.5]),
        }
        out = render_violins(groups, "Fig 2")
        assert "cluster-a" in out and "cluster-b" in out
        assert "median" in out
        assert "20.0%" in out  # 0.2 * 100


class TestRenderSeries:
    def test_xy_table(self):
        out = render_series([1, 2], [10.0, 20.0], "T", "cold", "Fig 1")
        assert "Fig 1" in out
        assert "10" in out and "20" in out
