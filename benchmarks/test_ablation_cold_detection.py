"""Ablation (§7 related work): accessed-bit scanning vs Thermostat sampling.

The paper bases cold-page identification on kstaled's full PTE-accessed-bit
scan and argues it over Thermostat's fault-sampling approach (which covers
only a sample per epoch and injects faults into hot paths).  We drive both
detectors with an identical access stream whose per-page Poisson rates are
known, and compare:

* detection quality — precision/recall against the generative ground truth
  (a page is truly cold at T when its rate is below 1/T);
* overhead — faults injected into the application (Thermostat) vs
  background pages scanned (kstaled).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_table
from repro.baselines import ThermostatConfig, ThermostatDetector
from repro.common.units import HOUR
from repro.core.histograms import default_age_bins
from repro.kernel.compression import ContentProfile
from repro.kernel.kstaled import SCAN_SECONDS_PER_PAGE, Kstaled
from repro.kernel.memcg import MemCg
from repro.workloads import HeterogeneousPoissonPattern, make_rates_for_cold_fraction

N_PAGES = 64 * 512  # 64 huge-page regions
THRESHOLD = 960.0  # classify "cold at 16 minutes"
SIM_SECONDS = 4 * HOUR
FAULT_COST_SECONDS = 5e-6  # one minor fault on a hot path


def region_truth(rates: np.ndarray, region_pages: int) -> np.ndarray:
    """Ground truth at region granularity: a region is cold when its
    *aggregate* access rate stays below one touch per threshold window."""
    regions = rates.reshape(-1, region_pages)
    return regions.sum(axis=1) < (1.0 / THRESHOLD)


def page_truth(rates: np.ndarray) -> np.ndarray:
    return rates < (1.0 / THRESHOLD)


def precision_recall(predicted: np.ndarray, truth: np.ndarray):
    tp = int((predicted & truth).sum())
    fp = int((predicted & ~truth).sum())
    fn = int((~predicted & truth).sum())
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    return precision, recall


@pytest.fixture(scope="module")
def detection_run():
    rng = np.random.default_rng(77)
    # Cluster rates by region so region-granular truth is meaningful
    # (Thermostat classifies 2 MiB regions, not pages).
    region_pages = 512
    n_regions = N_PAGES // region_pages
    region_rates = np.sort(
        make_rates_for_cold_fraction(n_regions, 0.4, rng)
    )
    rates = np.repeat(region_rates, region_pages)
    pattern = HeterogeneousPoissonPattern(rates)

    memcg = MemCg(
        "job", N_PAGES, ContentProfile(), default_age_bins(),
        np.random.default_rng(1),
    )
    memcg.allocate(N_PAGES)
    kstaled = Kstaled()
    thermostat = ThermostatDetector(
        N_PAGES,
        ThermostatConfig(region_pages=region_pages, sample_fraction=0.25,
                         epoch_seconds=120),
    )
    thermostat.begin_epoch(rng)
    for t in range(0, SIM_SECONDS, 60):
        touched, _ = pattern.step(t, 60, rng)
        memcg.touch(touched)
        thermostat.record_accesses(touched)
        if t % thermostat.config.epoch_seconds == 0 and t > 0:
            thermostat.end_epoch(t)
            thermostat.begin_epoch(rng)
        kstaled.maybe_scan(t, [memcg])
    return rates, memcg, kstaled, thermostat


def test_ablation_cold_detection(benchmark, detection_run, save_result):
    rates, memcg, kstaled, thermostat = detection_run
    region_pages = thermostat.config.region_pages

    def classify():
        # Both detectors judged at region (2 MiB) granularity: a region is
        # cold when no page in it was touched within the threshold.
        threshold_scans = int(np.ceil(THRESHOLD / memcg.scan_period))
        region_min_age = memcg.age_scans.reshape(-1, region_pages).min(axis=1)
        kstaled_cold = region_min_age >= threshold_scans
        thermostat_cold = np.zeros_like(kstaled_cold)
        thermostat_cold[thermostat.cold_regions(max_faults_per_epoch=0.0)] = (
            True
        )
        return kstaled_cold, thermostat_cold

    kstaled_cold, thermostat_cold = benchmark(classify)

    truth = region_truth(rates, region_pages)
    k_precision, k_recall = precision_recall(kstaled_cold, truth)
    t_precision, t_recall = precision_recall(thermostat_cold, truth)

    # Quality: the full scan must dominate sampling on recall (it observes
    # every page, every period) at comparable precision.
    assert k_recall >= t_recall
    assert k_precision >= 0.6
    assert k_recall >= 0.6

    # Overhead: Thermostat bills faults to the application's own accesses;
    # kstaled's cost is background scanning.
    fault_seconds = thermostat.total_sampled_faults * FAULT_COST_SECONDS
    scan_seconds = kstaled.pages_scanned * SCAN_SECONDS_PER_PAGE
    assert thermostat.total_sampled_faults > 0

    save_result(
        "ablation_cold_detection",
        render_table(
            ["detector", "precision", "recall", "app-visible overhead",
             "background overhead"],
            [
                ("kstaled accessed-bit scan", f"{k_precision:.2f}",
                 f"{k_recall:.2f}", "0 s", f"{scan_seconds:.3f} s"),
                ("Thermostat sampling", f"{t_precision:.2f}",
                 f"{t_recall:.2f}", f"{fault_seconds * 1e3:.2f} ms",
                 "~0 s"),
            ],
            title="§7 ablation — cold-page detection: scanning vs sampling "
            f"(T={THRESHOLD:.0f}s, 4 h, {N_PAGES} pages)",
        ),
    )
