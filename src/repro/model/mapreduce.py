"""A minimal MapReduce-style pipeline engine (paper §5.3).

The paper's fast far memory model is a FlumeJava/MapReduce pipeline: replay
of each job's trace is independent (map), and fleet statistics combine the
per-job results (reduce).  This engine reproduces that structure with a
deterministic in-process executor and an optional process pool — enough to
demonstrate the embarrassing parallelism the paper's scalability claim
rests on, without a cluster.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Generic, List, Sequence, TypeVar

from repro.common.validation import check_positive

__all__ = ["MapReduce", "mapreduce"]

InputT = TypeVar("InputT")
MappedT = TypeVar("MappedT")
ReducedT = TypeVar("ReducedT")


@dataclass
class MapReduce(Generic[InputT, MappedT, ReducedT]):
    """A two-stage pipeline: ``reduce(map(x) for x in inputs)``.

    Attributes:
        mapper: pure function applied to each input independently.
        reducer: combines the full list of mapped results.
        workers: process-pool size; 1 (default) runs in-process.
        chunk_size: inputs per task when using a pool.
    """

    mapper: Callable[[InputT], MappedT]
    reducer: Callable[[List[MappedT]], ReducedT]
    workers: int = 1
    chunk_size: int = 8

    def __post_init__(self) -> None:
        check_positive(self.workers, "workers")
        check_positive(self.chunk_size, "chunk_size")

    def run(self, inputs: Sequence[InputT]) -> ReducedT:
        """Execute the pipeline over ``inputs``.

        Results are reduced in input order regardless of worker scheduling,
        so runs are deterministic for deterministic mappers.
        """
        inputs = list(inputs)
        if self.workers == 1 or len(inputs) <= 1:
            mapped = [self.mapper(item) for item in inputs]
        else:
            # The mapper must be picklable (a module-level function or a
            # functools.partial of one) for the process pool.
            with multiprocessing.get_context("spawn").Pool(self.workers) as pool:
                mapped = pool.map(self.mapper, inputs, chunksize=self.chunk_size)
        return self.reducer(mapped)


def mapreduce(
    inputs: Sequence[InputT],
    mapper: Callable[[InputT], MappedT],
    reducer: Callable[[List[MappedT]], ReducedT],
    workers: int = 1,
) -> ReducedT:
    """Functional shorthand for :class:`MapReduce`."""
    return MapReduce(mapper=mapper, reducer=reducer, workers=workers).run(inputs)
