"""Covariance kernels for Gaussian-process regression.

Implemented from first principles on numpy: squared-exponential (RBF) and
Matérn-5/2 with per-dimension (ARD) lengthscales.  Matérn-5/2 is the
workhorse of Bayesian-optimization services like the Vizier system the
paper used — smooth enough for gradient-free search, rough enough not to
over-extrapolate.
"""

from __future__ import annotations

import abc
from typing import Sequence, Union

import numpy as np

from repro.common.validation import check_positive, require

__all__ = ["Kernel", "RbfKernel", "Matern52Kernel"]


def _scaled_distances(
    x1: np.ndarray, x2: np.ndarray, lengthscales: np.ndarray
) -> np.ndarray:
    """Pairwise Euclidean distances after per-dimension scaling."""
    s1 = x1 / lengthscales
    s2 = x2 / lengthscales
    sq = (
        np.sum(s1**2, axis=1)[:, None]
        + np.sum(s2**2, axis=1)[None, :]
        - 2.0 * s1 @ s2.T
    )
    return np.sqrt(np.maximum(sq, 0.0))


class Kernel(abc.ABC):
    """A positive-definite covariance function k(x, x')."""

    def __init__(
        self, lengthscales: Union[float, Sequence[float]], variance: float = 1.0
    ):
        scales = np.atleast_1d(np.asarray(lengthscales, dtype=np.float64))
        require(bool((scales > 0).all()), "lengthscales must be positive")
        check_positive(variance, "variance")
        self.lengthscales = scales
        self.variance = float(variance)

    def _broadcast_scales(self, dim: int) -> np.ndarray:
        if self.lengthscales.size == 1:
            return np.full(dim, self.lengthscales[0])
        require(
            self.lengthscales.size == dim,
            f"kernel has {self.lengthscales.size} lengthscales for "
            f"{dim}-dimensional inputs",
        )
        return self.lengthscales

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Covariance matrix between two point sets (n1, d) x (n2, d)."""
        x1 = np.atleast_2d(np.asarray(x1, dtype=np.float64))
        x2 = np.atleast_2d(np.asarray(x2, dtype=np.float64))
        scales = self._broadcast_scales(x1.shape[1])
        return self.variance * self._from_distance(
            _scaled_distances(x1, x2, scales)
        )

    def diagonal(self, n: int) -> np.ndarray:
        """k(x, x) for n points (constant for stationary kernels)."""
        return np.full(n, self.variance)

    @abc.abstractmethod
    def _from_distance(self, r: np.ndarray) -> np.ndarray:
        """Correlation as a function of scaled distance."""

    def with_params(self, lengthscales: np.ndarray, variance: float) -> "Kernel":
        """A copy with new hyperparameters (used by the optimizer)."""
        return type(self)(lengthscales, variance)


class RbfKernel(Kernel):
    """Squared-exponential kernel: ``exp(-r^2 / 2)``."""

    def _from_distance(self, r: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * r**2)


class Matern52Kernel(Kernel):
    """Matérn kernel with smoothness 5/2:
    ``(1 + sqrt(5) r + 5 r^2/3) exp(-sqrt(5) r)``."""

    def _from_distance(self, r: np.ndarray) -> np.ndarray:
        sr = np.sqrt(5.0) * r
        return (1.0 + sr + sr**2 / 3.0) * np.exp(-sr)
