"""Columnar trace store: equivalence, persistence, downsampling, engine."""

import json
import os

import numpy as np
import pytest

from repro.common.errors import (
    ConfigurationError,
    TraceError,
    TraceStoreError,
)
from repro.core.histograms import AgeBins, AgeHistogram, default_age_bins
from repro.model.replay import FarMemoryModel
from repro.model.trace import (
    TRACE_PERIOD_SECONDS,
    CompiledTrace,
    JobTrace,
    TraceEntry,
)
from repro.obs import MetricRegistry
from repro.tracestore import (
    ColumnarTraceDatabase,
    MANIFEST_NAME,
    TraceStore,
)


def make_entry(job_id="j", time=0, wss=100, machine="m0", bins=None, seed=None):
    bins = bins if bins is not None else default_age_bins()
    promo = AgeHistogram(bins)
    cold = AgeHistogram(bins)
    if seed is None:
        promo.add_ages(np.array([150.0] * 5))
        cold.add_ages(np.array([150.0] * 30 + [10.0] * 70))
    else:
        rng = np.random.default_rng(seed)
        promo.add_binned(rng.integers(0, 50, size=len(bins)))
        promo.young_count = int(rng.integers(0, 10))
        cold.add_binned(rng.integers(0, 500, size=len(bins)))
        cold.young_count = int(rng.integers(0, 100))
    return TraceEntry(
        job_id=job_id,
        machine_id=machine,
        time=time,
        working_set_pages=wss,
        promotion_histogram=promo,
        cold_age_histogram=cold,
        resident_pages=wss + 20,
        cpu_cores=2.0,
    )


def random_fleet(jobs=5, max_intervals=12, seed=7):
    """Randomized per-job traces (varying lengths, shared grid)."""
    rng = np.random.default_rng(seed)
    traces = []
    for j in range(jobs):
        trace = JobTrace(f"job-{j}")
        for t in range(int(rng.integers(1, max_intervals + 1))):
            trace.append(
                make_entry(
                    trace.job_id,
                    time=t * TRACE_PERIOD_SECONDS,
                    wss=int(rng.integers(10, 100_000)),
                    machine=f"m{j % 3}",
                    seed=int(rng.integers(0, 2**31)),
                )
            )
        traces.append(trace)
    return traces


def assert_compiled_equal(a: CompiledTrace, b: CompiledTrace):
    assert a.job_id == b.job_id
    assert (a.bins.thresholds if a.bins else None) == (
        b.bins.thresholds if b.bins else None
    )
    np.testing.assert_array_equal(a.cold_suffix_sums, b.cold_suffix_sums)
    np.testing.assert_array_equal(
        a.promotion_suffix_sums, b.promotion_suffix_sums
    )
    np.testing.assert_array_equal(a.working_set_pages, b.working_set_pages)
    np.testing.assert_array_equal(a.times, b.times)
    np.testing.assert_array_equal(a.resident_pages, b.resident_pages)
    np.testing.assert_array_equal(a.cpu_cores, b.cpu_cores)
    assert a.interval_seconds == b.interval_seconds


class TestFromColumnsEquivalence:
    """`from_columns` must be bit-identical to the `from_trace` oracle."""

    def columns_of(self, trace: JobTrace):
        return dict(
            cold_counts=np.stack(
                [e.cold_age_histogram.counts for e in trace.entries]
            ),
            promotion_counts=np.stack(
                [e.promotion_histogram.counts for e in trace.entries]
            ),
            working_set_pages=np.array(
                [e.working_set_pages for e in trace.entries]
            ),
            times=np.array([e.time for e in trace.entries]),
            resident_pages=np.array(
                [e.resident_pages for e in trace.entries]
            ),
            cpu_cores=np.array([e.cpu_cores for e in trace.entries]),
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_traces(self, seed):
        for trace in random_fleet(jobs=4, seed=seed):
            oracle = CompiledTrace.from_trace(trace)
            built = CompiledTrace.from_columns(
                job_id=trace.job_id,
                bins=trace.entries[0].bins,
                **self.columns_of(trace),
            )
            assert_compiled_equal(built, oracle)

    def test_empty(self):
        oracle = CompiledTrace.from_trace(JobTrace("empty"))
        bins = default_age_bins()
        built = CompiledTrace.from_columns(
            job_id="empty",
            bins=None,
            cold_counts=np.zeros((0, len(bins)), dtype=np.int64),
            promotion_counts=np.zeros((0, len(bins)), dtype=np.int64),
            working_set_pages=np.zeros(0, dtype=np.int64),
            times=np.zeros(0, dtype=np.int64),
            resident_pages=np.zeros(0, dtype=np.int64),
            cpu_cores=np.zeros(0),
        )
        assert_compiled_equal(built, oracle)

    def test_single_interval(self):
        trace = JobTrace("one")
        trace.append(make_entry("one", 0, seed=11))
        built = CompiledTrace.from_columns(
            job_id="one", bins=trace.entries[0].bins, **self.columns_of(trace)
        )
        assert_compiled_equal(built, CompiledTrace.from_trace(trace))

    def test_colder_than_beyond_grid(self):
        """A threshold past the grid must read the explicit zero column
        identically on both constructions."""
        trace = random_fleet(jobs=1, seed=5)[0]
        oracle = CompiledTrace.from_trace(trace)
        built = CompiledTrace.from_columns(
            job_id=trace.job_id,
            bins=trace.entries[0].bins,
            **self.columns_of(trace),
        )
        beyond = np.full(
            oracle.intervals, float(max(oracle.bins.thresholds)) * 10
        )
        disabled = np.full(oracle.intervals, np.inf)
        for thresholds in (beyond, disabled):
            for cold in (True, False):
                np.testing.assert_array_equal(
                    built.colder_than(thresholds, cold=cold),
                    oracle.colder_than(thresholds, cold=cold),
                )
        np.testing.assert_array_equal(
            built.colder_than(beyond, cold=True), np.zeros(oracle.intervals)
        )

    def test_missing_bins_rejected(self):
        trace = random_fleet(jobs=1, seed=6)[0]
        with pytest.raises(TraceError, match="threshold grid"):
            CompiledTrace.from_columns(
                job_id=trace.job_id, bins=None, **self.columns_of(trace)
            )

    def test_shape_mismatch_rejected(self):
        trace = random_fleet(jobs=1, seed=6)[0]
        cols = self.columns_of(trace)
        cols["working_set_pages"] = cols["working_set_pages"][:-1]
        with pytest.raises(TraceError, match="working_set_pages"):
            CompiledTrace.from_columns(
                job_id=trace.job_id, bins=trace.entries[0].bins, **cols
            )


class TestTraceStore:
    def test_seal_reopen_roundtrip(self, tmp_path):
        store = TraceStore(tmp_path / "s", buffer_rows=3)
        fleet = random_fleet(jobs=3, seed=9)
        entries = sorted(
            (e for t in fleet for e in t.entries),
            key=lambda e: (e.time, e.job_id),
        )
        for entry in entries:
            store.append(entry)
        store.close()
        assert len(store.segments) >= 2  # buffer_rows=3 forces sealing

        reopened = TraceStore(tmp_path / "s")
        assert reopened.rows_total == len(entries)
        assert reopened.jobs == store.jobs
        for trace in fleet:
            restored = reopened.entries_for(trace.job_id)
            assert [e.time for e in restored] == [
                e.time for e in trace.entries
            ]
            np.testing.assert_array_equal(
                restored[0].cold_age_histogram.counts,
                trace.entries[0].cold_age_histogram.counts,
            )
            assert restored[0].machine_id == trace.entries[0].machine_id
            assert restored[0].cpu_cores == trace.entries[0].cpu_cores

    def test_compiled_traces_match_oracle(self, tmp_path):
        store = TraceStore(tmp_path / "s", buffer_rows=4)
        fleet = random_fleet(jobs=4, seed=10)
        for trace in fleet:
            for entry in trace.entries:
                store.append(entry)
        # Deliberately leave rows in the buffer: compile must see them.
        compiled = {c.job_id: c for c in store.compiled_traces()}
        assert set(compiled) == {t.job_id for t in fleet}
        for trace in fleet:
            assert_compiled_equal(
                compiled[trace.job_id], CompiledTrace.from_trace(trace)
            )

    def test_compiled_traces_windowed(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        trace = JobTrace("a")
        for t in range(6):
            entry = make_entry("a", t * TRACE_PERIOD_SECONDS, seed=t)
            trace.append(entry)
            store.append(entry)
        (compiled,) = store.compiled_traces(
            start=TRACE_PERIOD_SECONDS, end=4 * TRACE_PERIOD_SECONDS
        )
        windowed = JobTrace("a")
        for entry in trace.entries[1:4]:
            windowed.append(entry)
        assert_compiled_equal(compiled, CompiledTrace.from_trace(windowed))

    def test_grid_mismatch_rejected(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        store.append(make_entry("a", 0))
        other = AgeBins((120, 600))
        with pytest.raises(TraceError, match="threshold grid"):
            store.append(make_entry("a", 300, bins=other))

    def test_out_of_order_rejected_across_flush(self, tmp_path):
        store = TraceStore(tmp_path / "s", buffer_rows=1)
        store.append(make_entry("a", 600))
        with pytest.raises(TraceError, match="out-of-order"):
            store.append(make_entry("a", 300))

    def test_window_summaries(self, tmp_path):
        store = TraceStore(tmp_path / "s", window_seconds=600)
        store.append(make_entry("a", 0, wss=10))
        store.append(make_entry("b", 300, wss=20))
        store.append(make_entry("a", 600, wss=30))
        summaries = store.window_summaries()
        assert [w.start for w in summaries] == [0, 600]
        assert summaries[0].rows == 2
        assert summaries[0].jobs == 2
        assert summaries[0].working_set_pages == 30
        assert summaries[1].rows == 1
        assert summaries[1].jobs == 1

    def test_window_summaries_survive_reopen_and_compact(self, tmp_path):
        store = TraceStore(tmp_path / "s", window_seconds=600)
        for t in range(4):
            store.append(make_entry("a", t * 300, wss=t + 1, seed=t))
        store.close()
        before = [w.to_dict() for w in store.window_summaries()]
        reopened = TraceStore(tmp_path / "s", window_seconds=600)
        reopened.compact(4)
        assert reopened.rows_total == 1
        assert [w.to_dict() for w in reopened.window_summaries()] == before

    def test_metrics_registered(self, tmp_path):
        registry = MetricRegistry()
        store = TraceStore(tmp_path / "s", buffer_rows=2, registry=registry)
        store.append(make_entry("a", 0))
        store.append(make_entry("a", 300))  # triggers a flush
        exposition = registry.expose_text()
        assert "repro_tracestore_rows_total" in exposition
        assert "repro_tracestore_segments_total" in exposition
        assert "repro_tracestore_bytes_written_total" in exposition
        assert store.flush_count == 1
        assert store.bytes_written > 0

    def test_missing_store_rejected(self, tmp_path):
        with pytest.raises(TraceStoreError, match="not a trace store"):
            TraceStore(tmp_path / "ghost", create=False)

    def test_corrupt_manifest_rejected(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(TraceStoreError, match="unreadable manifest"):
            TraceStore(root)

    def test_wrong_version_rejected(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / MANIFEST_NAME).write_text(
            json.dumps({"version": 999}), encoding="utf-8"
        )
        with pytest.raises(TraceStoreError, match="version"):
            TraceStore(root)

    def test_missing_field_rejected(self, tmp_path):
        store = TraceStore(tmp_path / "s", buffer_rows=1)
        store.append(make_entry("a", 0))
        manifest = tmp_path / "s" / MANIFEST_NAME
        data = json.loads(manifest.read_text())
        del data["segments"]
        manifest.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(TraceStoreError, match="missing or malformed"):
            TraceStore(tmp_path / "s")

    def test_missing_segment_file_rejected(self, tmp_path):
        store = TraceStore(tmp_path / "s", buffer_rows=1)
        store.append(make_entry("a", 0))
        (tmp_path / "s" / store.segments[0].name).unlink()
        reopened = TraceStore(tmp_path / "s")
        with pytest.raises(TraceStoreError, match="unreadable segment"):
            reopened.entries_for("a")

    def test_forked_copy_never_writes(self, tmp_path):
        store = TraceStore(tmp_path / "s", buffer_rows=2)
        store.append(make_entry("a", 0))
        store._owner_pid = os.getpid() + 1  # simulate a forked child
        store.append(make_entry("a", 300))  # would seal in the owner
        store.append(make_entry("a", 600))
        assert store.segments == []
        assert store.flush() == 0
        assert list(tmp_path.glob("s/seg-*.npz")) == []
        # Reads still see the buffered rows.
        assert [e.time for e in store.entries_for("a")] == [0, 300, 600]
        with pytest.raises(TraceStoreError, match="forked"):
            store.compact(2)


class TestDownsampling:
    def fill(self, tmp_path, intervals=8):
        store = TraceStore(tmp_path / "s", buffer_rows=4)
        trace = JobTrace("a")
        for t in range(intervals):
            entry = make_entry(
                "a", t * TRACE_PERIOD_SECONDS, wss=100 * (t + 1), seed=t
            )
            trace.append(entry)
            store.append(entry)
        store.close()
        return store, trace

    def test_compact_semantics(self, tmp_path):
        store, trace = self.fill(tmp_path)
        removed = store.compact(2)
        assert removed == 4
        assert store.rows_total == 4
        (compiled,) = store.compiled_traces()
        assert compiled.interval_seconds == 2 * TRACE_PERIOD_SECONDS
        # Promotions accumulate across each merged pair...
        raw = CompiledTrace.from_trace(trace)
        np.testing.assert_array_equal(
            compiled.promotion_suffix_sums,
            raw.promotion_suffix_sums[0::2] + raw.promotion_suffix_sums[1::2],
        )
        # ...the cold snapshot keeps the last row of each pair...
        np.testing.assert_array_equal(
            compiled.cold_suffix_sums, raw.cold_suffix_sums[1::2]
        )
        # ...the working set is the pair maximum, the time the pair start.
        np.testing.assert_array_equal(
            compiled.working_set_pages,
            np.maximum(raw.working_set_pages[0::2],
                       raw.working_set_pages[1::2]),
        )
        np.testing.assert_array_equal(compiled.times, raw.times[0::2])

    def test_mixed_factors_rejected(self, tmp_path):
        store, _ = self.fill(tmp_path)
        store.compact(2, before=TRACE_PERIOD_SECONDS * 4)
        with pytest.raises(TraceStoreError, match="mix downsample factors"):
            store.compiled_traces()

    def test_compact_is_idempotent_on_downsampled(self, tmp_path):
        store, _ = self.fill(tmp_path)
        store.compact(2)
        assert store.compact(2) == 0  # already-downsampled segments skipped


class TestColumnarTraceDatabase:
    def test_database_surface(self, tmp_path):
        db = ColumnarTraceDatabase(tmp_path / "s", buffer_rows=3)
        db.add(make_entry("a", 0))
        db.add(make_entry("a", 300))
        db.add(make_entry("b", 0))
        assert len(db) == 3
        assert db.entries_total == 3
        assert db.job_ids == ["a", "b"]
        assert len(db.trace_for("a")) == 2
        with pytest.raises(TraceError):
            db.trace_for("ghost")
        windowed = db.traces(start=300)
        assert len(windowed) == 1
        assert [e.time for e in windowed[0].entries] == [300]

    def test_mark_entries_since_across_seal(self, tmp_path):
        db = ColumnarTraceDatabase(tmp_path / "s", buffer_rows=2)
        db.add(make_entry("a", 0))
        mark = db.mark()
        db.add(make_entry("a", 300))  # seals a segment
        db.add(make_entry("b", 0))
        delta = db.entries_since(mark)
        assert [(e.job_id, e.time) for e in delta] == [("a", 300), ("b", 0)]
        assert db.entries_since(db.mark()) == []

    def test_jsonl_interchange(self, tmp_path):
        db = ColumnarTraceDatabase(tmp_path / "s")
        for t in (0, 300):
            db.add(make_entry("a", t, seed=t))
        path = tmp_path / "out.jsonl"
        assert db.save_jsonl(path) == 2
        loaded = ColumnarTraceDatabase.load_jsonl(path, tmp_path / "s2")
        assert loaded.job_ids == ["a"]
        np.testing.assert_array_equal(
            loaded.trace_for("a").entries[0].cold_age_histogram.counts,
            db.trace_for("a").entries[0].cold_age_histogram.counts,
        )

    def test_load_jsonl_bad_line_located(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "a trace entry"}\n')
        with pytest.raises(TraceError, match="bad.jsonl:1"):
            ColumnarTraceDatabase.load_jsonl(path, tmp_path / "s")

    def test_model_replays_from_columns(self, tmp_path):
        """The acceptance-criteria path: evaluate_many over compiled
        tensors built straight from disk equals the object path."""
        from repro.model.bench import bench_configs

        db = ColumnarTraceDatabase(tmp_path / "s", buffer_rows=8)
        for trace in random_fleet(jobs=3, seed=12):
            for entry in trace.entries:
                db.add(entry)
        db.flush()
        batch = bench_configs(3)
        with FarMemoryModel(db.traces()) as object_model:
            expected = object_model.evaluate_many(batch)
        with FarMemoryModel(db.compiled_traces()) as columnar_model:
            actual = columnar_model.evaluate_many(batch)
        assert actual == expected

    def test_precompiled_requires_vectorized(self, tmp_path):
        db = ColumnarTraceDatabase(tmp_path / "s")
        db.add(make_entry("a", 0))
        with pytest.raises(ConfigurationError, match="vectorized"):
            FarMemoryModel(db.compiled_traces(), vectorized=False)

    def test_mixed_trace_kinds_rejected(self, tmp_path):
        db = ColumnarTraceDatabase(tmp_path / "s")
        db.add(make_entry("a", 0))
        mixed = [db.trace_for("a"), *db.compiled_traces()]
        with pytest.raises(ConfigurationError, match="mix"):
            FarMemoryModel(mixed)


class TestEngineIntegration:
    def test_serial_parallel_equivalence_on_columnar_db(self, tmp_path):
        """The fleet's trace_db can be columnar with zero engine changes;
        forked workers must not corrupt the parent's segments."""
        from repro.cluster import quickfleet
        from repro.common.units import HOUR
        from repro.engine import FleetEngine

        def run(workers, root):
            db = ColumnarTraceDatabase(root, buffer_rows=16)
            fleet = quickfleet(
                clusters=2,
                machines_per_cluster=2,
                jobs_per_machine=2,
                seed=3,
                trace_db=db,
            )
            if workers > 1:
                FleetEngine(fleet, workers=workers).run(HOUR)
            else:
                fleet.run(HOUR)
            return fleet, db

        serial_fleet, serial_db = run(1, tmp_path / "serial")
        parallel_fleet, parallel_db = run(2, tmp_path / "parallel")

        def rows(db):
            return sorted(
                (e.job_id, e.time, e.working_set_pages,
                 tuple(e.cold_age_histogram.counts.tolist()))
                for t in db.traces()
                for e in t.entries
            )

        assert rows(serial_db) == rows(parallel_db)
        assert (
            serial_fleet.coverage_report() == parallel_fleet.coverage_report()
        )
        # The parent owned the store the whole time: reopening from disk
        # (after a flush) sees every entry exactly once.
        parallel_db.flush()
        reopened = ColumnarTraceDatabase(tmp_path / "parallel")
        assert rows(reopened) == rows(parallel_db)


class TestAtomicSaveJsonl:
    def test_no_temp_residue_and_atomic_content(self, tmp_path):
        from repro.cluster.trace_db import TraceDatabase

        db = TraceDatabase()
        db.add(make_entry("a", 0))
        path = tmp_path / "out.jsonl"
        path.write_text("stale\n", encoding="utf-8")
        assert db.save_jsonl(path) == 1
        assert "stale" not in path.read_text()
        assert list(tmp_path.iterdir()) == [path]

    def test_crash_mid_export_leaves_original(self, tmp_path, monkeypatch):
        from repro.cluster.trace_db import TraceDatabase

        db = TraceDatabase()
        db.add(make_entry("a", 0))
        path = tmp_path / "out.jsonl"
        path.write_text("original\n", encoding="utf-8")

        def boom(entry_self):
            raise RuntimeError("injected crash")

        monkeypatch.setattr(TraceEntry, "to_dict", boom)
        with pytest.raises(RuntimeError, match="injected crash"):
            db.save_jsonl(path)
        assert path.read_text() == "original\n"
        assert list(tmp_path.iterdir()) == [path]


class TestBisectWindowing:
    def test_windowed_traces_still_correct(self):
        from repro.cluster.trace_db import TraceDatabase

        db = TraceDatabase()
        for t in (0, 300, 600, 900):
            db.add(make_entry("a", t))
        db.add(make_entry("b", 600))
        windowed = {t.job_id: t for t in db.traces(start=300, end=900)}
        assert [e.time for e in windowed["a"].entries] == [300, 600]
        assert [e.time for e in windowed["b"].entries] == [600]
        assert db.traces(start=1200) == []
        assert db.traces(end=0) == []
        assert len(db.traces()) == 2


class TestBatchAppend:
    """append_batch / add_batch: the columnar telemetry write path."""

    @staticmethod
    def _window_batches(jobs=4, windows=6):
        """Entries grouped per export window, every job in every window."""
        batches = []
        for w in range(windows):
            batches.append([
                make_entry(f"job-{j}", time=w * 300, machine=f"m{j % 2}",
                           seed=w * 100 + j)
                for j in range(jobs)
            ])
        return batches

    @staticmethod
    def _dump(store):
        return {
            job_id: [e.to_dict() for e in store.entries_for(job_id)]
            for job_id in store.jobs
        }

    def test_batch_matches_per_entry(self, tmp_path):
        batches = self._window_batches()
        one = TraceStore(tmp_path / "per-entry", registry=MetricRegistry())
        for batch in batches:
            for entry in batch:
                one.append(entry)
        many = TraceStore(tmp_path / "batched", registry=MetricRegistry())
        for batch in batches:
            many.append_batch(batch)

        assert many.rows_total == one.rows_total
        assert many.jobs == one.jobs
        assert many.machines == one.machines
        assert many.time_range == one.time_range
        assert self._dump(many) == self._dump(one)
        assert (
            [w.to_dict() for w in many.window_summaries()]
            == [w.to_dict() for w in one.window_summaries()]
        )
        # Sealed segments must match too, not just the live buffer.
        assert many.flush() == one.flush()
        assert self._dump(many) == self._dump(one)

    def test_interleaved_append_and_batch_preserve_order(self, tmp_path):
        batches = self._window_batches(jobs=2, windows=3)
        store = TraceStore(tmp_path / "mixed", registry=MetricRegistry())
        oracle = TraceStore(tmp_path / "oracle", registry=MetricRegistry())
        for w, batch in enumerate(batches):
            if w % 2 == 0:
                store.append_batch(batch)
            else:
                for entry in batch:
                    store.append(entry)
            for entry in batch:
                oracle.append(entry)
        assert self._dump(store) == self._dump(oracle)
        for job_id in oracle.jobs:
            assert store.job_rows(job_id) == oracle.job_rows(job_id)

    def test_bad_batch_rejected_whole(self, tmp_path):
        store = TraceStore(tmp_path / "s", registry=MetricRegistry())
        store.append(make_entry("a", time=600))
        bad = [
            make_entry("b", time=900),
            make_entry("a", time=300),  # older than a's watermark
        ]
        with pytest.raises(TraceError, match="out-of-order"):
            store.append_batch(bad)
        assert store.rows_total == 1
        assert store.jobs == ["a"]
        # A valid batch still lands afterwards.
        store.append_batch([make_entry("a", time=900),
                            make_entry("b", time=900)])
        assert store.rows_total == 3

    def test_batch_grid_mismatch_rejected(self, tmp_path):
        store = TraceStore(tmp_path / "s", registry=MetricRegistry())
        store.append(make_entry("a", time=0))
        other = AgeBins((240.0, 3600.0))
        with pytest.raises(TraceError, match="threshold grid"):
            store.append_batch([make_entry("b", time=0, bins=other)])
        assert store.rows_total == 1

    def test_batch_seals_and_reopens(self, tmp_path):
        root = tmp_path / "sealed"
        store = TraceStore(root, buffer_rows=4, registry=MetricRegistry())
        for batch in self._window_batches(jobs=3, windows=4):
            store.append_batch(batch)
        assert store.segments  # threshold crossed inside append_batch
        store.close()
        reopened = TraceStore(root, registry=MetricRegistry())
        assert reopened.rows_total == 12
        assert [e.time for e in reopened.entries_for("job-0")] == [
            0, 300, 600, 900
        ]

    def test_columnar_fleet_batch_export_matches_scalar(self, tmp_path):
        """End to end: the columnar kernel's batched telemetry stores the
        same entries the scalar kernel's per-entry path does."""
        from repro.cluster.wsc import quickfleet
        from repro.obs import Tracer

        dumps = {}
        for kernel in ("scalar", "columnar"):
            db = ColumnarTraceDatabase(
                tmp_path / kernel, registry=MetricRegistry()
            )
            fleet = quickfleet(
                clusters=1, machines_per_cluster=2, jobs_per_machine=4,
                seed=11, machine_dram_gib=1.0, kernel=kernel,
                pool_scope="cluster" if kernel == "columnar" else "machine",
                registry=MetricRegistry(), tracer=Tracer(),
                trace_db=db,
            )
            fleet.run(3600)
            db.flush()
            dumps[kernel] = {
                job_id: [e.to_dict() for e in db.store.entries_for(job_id)]
                for job_id in db.store.jobs
            }
        assert dumps["columnar"] == dumps["scalar"]
        assert any(rows for rows in dumps["scalar"].values())
