"""DET001 negative fixture: simulated time only."""


def stamp(clock):
    # Reading the simulation clock is the sanctioned path.
    return clock.now()


def structured(records):
    # Attribute chains that merely *end* in "time" are not wall clocks.
    return [record.time for record in records]
