"""The fast far memory model: trace schema, MapReduce engine, offline replay."""

from repro.model.mapreduce import MapReduce, mapreduce
from repro.model.replay import FarMemoryModel, FleetReplayReport, JobReplayResult
from repro.model.trace import TRACE_PERIOD_SECONDS, JobTrace, TraceEntry
from repro.model.validation import (
    ConfigOutcome,
    ModelValidator,
    ValidationReport,
)

__all__ = [
    "ConfigOutcome",
    "FarMemoryModel",
    "ModelValidator",
    "ValidationReport",
    "FleetReplayReport",
    "JobReplayResult",
    "MapReduce",
    "TRACE_PERIOD_SECONDS",
    "JobTrace",
    "TraceEntry",
    "mapreduce",
]
