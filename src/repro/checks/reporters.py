"""Finding reporters and the baseline workflow.

Two output formats:

* **text** — ``path:line:col: RULE message`` per finding, a summary
  line, and a per-rule tally (human / CI-log consumption);
* **json** — a stable document with the engine version, rule catalogue,
  and findings (machine consumption, e.g. code-review bots).

The baseline workflow makes adoption incremental: ``repro lint
--update-baseline`` snapshots today's findings to
``checks_baseline.json``; later runs with ``--baseline`` report only
*new* findings.  Keys are ``path::rule::message`` — line numbers drift
as files are edited, so they are deliberately not part of the identity.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Set

from repro.checks.core import RULES, Finding, LintError

__all__ = [
    "filter_baseline",
    "load_baseline",
    "render_json",
    "render_text",
    "save_baseline",
]

#: Bumped when the JSON document shape changes.
REPORT_FORMAT_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.render() for f in findings]
    if not findings:
        lines.append("repro lint: clean (0 findings)")
        return "\n".join(lines)
    tally: Dict[str, int] = {}
    for finding in findings:
        tally[finding.rule] = tally.get(finding.rule, 0) + 1
    lines.append("")
    lines.append(
        f"repro lint: {len(findings)} finding(s) in "
        f"{len({f.path for f in findings})} file(s)"
    )
    for rule_id in sorted(tally):
        title = RULES[rule_id].title if rule_id in RULES else "parse failure"
        lines.append(f"  {rule_id:<8} {tally[rule_id]:>4}  {title}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable key order, trailing newline free)."""
    document = {
        "version": REPORT_FORMAT_VERSION,
        "rules": {
            rule_id: RULES[rule_id].title for rule_id in sorted(RULES)
        },
        "count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def save_baseline(findings: Sequence[Finding], path: Path) -> None:
    """Snapshot findings as a baseline file (sorted, deduplicated keys)."""
    keys = sorted({f.baseline_key() for f in findings})
    document = {"version": REPORT_FORMAT_VERSION, "suppressed": keys}
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Set[str]:
    """Read a baseline file back into a set of finding keys."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    suppressed = document.get("suppressed")
    if not isinstance(suppressed, list):
        raise LintError(f"baseline {path} has no 'suppressed' list")
    return set(suppressed)


def filter_baseline(
    findings: Sequence[Finding], baseline: Set[str]
) -> List[Finding]:
    """Findings not covered by the baseline (i.e. new since snapshot)."""
    return [f for f in findings if f.baseline_key() not in baseline]
