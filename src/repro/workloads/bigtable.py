"""A Bigtable-like serving workload for the Fig. 10 case study.

The paper's application case study A/B-tests zswap on Bigtable: a
petabyte-scale storage system whose serving path keeps an in-memory block
cache and serves millions of ops/s with diurnal load.  The metrics compared
are *cold memory coverage* and *user-level IPC* (instructions per cycle,
excluding kernel work so zswap's own cycles don't pollute the comparison).

:class:`BigtableApp` reproduces the memory-visible behaviour: a block cache
touched by a Zipf-distributed query stream with a strong diurnal swing, plus
a small always-hot index/memtable region, all driven through the standard
:class:`~repro.kernel.machine.Machine` API.  Its user-IPC proxy degrades the
baseline IPC by the fraction of wall time queries spend stalled on zswap
promotions, plus machine-level noise — so if the control plane keeps the
promotion rate at SLO, the A/B IPC delta lands in the noise, as the paper
found.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.common.units import DAY, MIB, PAGE_SIZE
from repro.common.validation import check_fraction, check_positive
from repro.kernel.compression import ContentProfile
from repro.kernel.machine import Machine
from repro.workloads.content import CONTENT_PROFILES

__all__ = ["BigtableConfig", "BigtableMetricSample", "BigtableApp"]


@dataclass(frozen=True)
class BigtableConfig:
    """Parameters of one Bigtable serving instance.

    Attributes:
        cache_pages: block-cache size in pages.
        hot_index_pages: always-hot index/memtable region.
        peak_qps: peak queries per second.
        pages_per_query: cache blocks a query touches.
        zipf_alpha: query-key skew.
        diurnal_amplitude: day/night load swing (0..1).
        write_fraction: queries that dirty a block (compactions, inserts).
        base_ipc: user-level IPC with zswap off.
        ipc_noise_sigma: machine-to-machine IPC noise (relative).
        cpu_cores: serving CPU usage for overhead normalization.
    """

    cache_pages: int = (512 * MIB) // PAGE_SIZE
    hot_index_pages: int = (32 * MIB) // PAGE_SIZE
    peak_qps: float = 1000.0
    pages_per_query: int = 2
    zipf_alpha: float = 1.4
    diurnal_amplitude: float = 0.6
    write_fraction: float = 0.05
    base_ipc: float = 1.2
    ipc_noise_sigma: float = 0.02
    cpu_cores: float = 8.0

    def __post_init__(self) -> None:
        check_positive(self.cache_pages, "cache_pages")
        check_positive(self.hot_index_pages, "hot_index_pages")
        check_positive(self.peak_qps, "peak_qps")
        check_positive(self.pages_per_query, "pages_per_query")
        check_positive(self.zipf_alpha, "zipf_alpha")
        check_fraction(self.diurnal_amplitude, "diurnal_amplitude")
        check_fraction(self.write_fraction, "write_fraction")
        check_positive(self.base_ipc, "base_ipc")
        check_positive(self.cpu_cores, "cpu_cores")


@dataclass(frozen=True)
class BigtableMetricSample:
    """One measurement-interval observation (a point in Fig. 10).

    Attributes:
        time: interval start.
        qps: queries served per second.
        user_ipc: the user-level IPC proxy.
        promotions: zswap promotions during the interval.
        coverage: this instance's cold-memory coverage.
    """

    time: int
    qps: float
    user_ipc: float
    promotions: int
    coverage: float


class BigtableApp:
    """One Bigtable serving instance bound to a machine.

    Args:
        job_id: the job name under which the cache is allocated.
        machine: host machine (zswap on or off per its config).
        config: workload parameters.
        rng: this instance's random stream.
        content_profile: cache-block compressibility (Bigtable blocks are
            mixed application data; defaults to the "mixed" preset).
    """

    def __init__(
        self,
        job_id: str,
        machine: Machine,
        config: BigtableConfig,
        rng: np.random.Generator,
        content_profile: Optional[ContentProfile] = None,
    ):
        self.job_id = job_id
        self.machine = machine
        self.config = config
        self._rng = rng
        profile = (
            content_profile
            if content_profile is not None
            else CONTENT_PROFILES["mixed"]
        )
        total_pages = config.cache_pages + config.hot_index_pages
        machine.add_job(job_id, capacity_pages=total_pages, content_profile=profile)
        indices = machine.allocate(job_id, total_pages)
        self._index_pages = indices[: config.hot_index_pages]
        self._cache_pages = indices[config.hot_index_pages :]
        weights = 1.0 / np.power(
            np.arange(1, self._cache_pages.size + 1, dtype=np.float64),
            config.zipf_alpha,
        )
        self._cdf = np.cumsum(weights / weights.sum())
        self.samples: List[BigtableMetricSample] = []
        self._last_decompress_seconds = 0.0
        self._last_promotions = 0

    def qps_at(self, now: int) -> float:
        """Diurnal query rate at a given time."""
        angle = 2.0 * math.pi * (now % DAY) / DAY
        level = 1.0 - self.config.diurnal_amplitude * 0.5 * (1.0 - math.cos(angle))
        return self.config.peak_qps * level

    def step(self, now: int, interval_seconds: int) -> BigtableMetricSample:
        """Serve one interval of queries and record a metric sample."""
        qps = self.qps_at(now)
        n_queries = int(self._rng.poisson(qps * interval_seconds))
        n_block_reads = n_queries * self.config.pages_per_query
        # Cap raw draws: past ~4x the cache size additional draws only re-touch
        # pages whose accessed bit is already set.
        n_draw = int(min(n_block_reads, 4 * self._cache_pages.size))
        if n_draw > 0:
            picks = np.searchsorted(self._cdf, self._rng.random(n_draw))
            touched = self._cache_pages[np.unique(picks)]
        else:
            touched = np.zeros(0, dtype=np.int64)
        writes = self._rng.random(touched.size) < self.config.write_fraction
        self.machine.touch(self.job_id, touched[~writes], write=False)
        self.machine.touch(self.job_id, touched[writes], write=True)
        # The index/memtable region is on every query's path.
        self.machine.touch(self.job_id, self._index_pages, write=False)

        stats = self.machine.zswap.stats_for(self.job_id)
        stall = stats.decompress_seconds - self._last_decompress_seconds
        self._last_decompress_seconds = stats.decompress_seconds
        promotions = stats.pages_decompressed - self._last_promotions
        self._last_promotions = stats.pages_decompressed

        busy_seconds = interval_seconds * self.config.cpu_cores
        stall_fraction = min(1.0, stall / busy_seconds) if busy_seconds else 0.0
        noise = self._rng.normal(0.0, self.config.ipc_noise_sigma)
        user_ipc = self.config.base_ipc * (1.0 - stall_fraction) * (1.0 + noise)

        memcg = self.machine.memcgs[self.job_id]
        cold = memcg.cold_pages(self.machine.bins.min_threshold)
        coverage = (memcg.far_pages / cold) if cold else 0.0

        sample = BigtableMetricSample(
            time=now,
            qps=(n_queries / interval_seconds) if interval_seconds else 0.0,
            user_ipc=user_ipc,
            promotions=promotions,
            coverage=min(1.0, coverage),
        )
        self.samples.append(sample)
        return sample
