"""Memory TCO model (paper §6.1).

The paper's arithmetic: with fleet-average cold-memory coverage ``c`` (20 %),
an upper bound on the cold fraction of memory ``f`` (32 % at T = 120 s), and
compressed pages costing ``1 - 1/r`` less DRAM (67 % cheaper at the median
3x compression ratio), the DRAM TCO saving is approximately::

    savings = c * f * (1 - 1/r) ~= 0.20 * 0.32 * 0.67 ~= 4.3 %

This module generalizes that arithmetic, adds the CPU-overhead debit that
zswap trades for the memory saving, and prices the result in dollars so the
"millions of dollars at WSC scale" claim can be reproduced for any fleet
size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.validation import check_fraction, check_non_negative, check_positive

__all__ = ["TcoModel", "TcoReport"]


@dataclass(frozen=True)
class TcoReport:
    """Result of a TCO evaluation.

    Attributes:
        dram_saving_fraction: fraction of DRAM TCO saved (the 4-5 % figure).
        effective_compressed_fraction: fraction of all DRAM bytes holding
            compressed payloads' *logical* data (coverage x cold fraction).
        dram_dollars_saved_per_year: priced saving for the modelled fleet.
        cpu_overhead_dollars_per_year: cost of the compression cycles.
        net_dollars_saved_per_year: saving minus CPU overhead.
    """

    dram_saving_fraction: float
    effective_compressed_fraction: float
    dram_dollars_saved_per_year: float
    cpu_overhead_dollars_per_year: float
    net_dollars_saved_per_year: float


@dataclass(frozen=True)
class TcoModel:
    """Prices the memory saved by software-defined far memory.

    Attributes:
        dram_dollars_per_gib_year: amortized DRAM cost.
        cpu_dollars_per_core_year: amortized cost of one logical core.
        fleet_dram_gib: total fleet DRAM capacity being modelled.
    """

    dram_dollars_per_gib_year: float = 25.0
    cpu_dollars_per_core_year: float = 300.0
    fleet_dram_gib: float = 1_000_000.0

    def __post_init__(self) -> None:
        check_positive(self.dram_dollars_per_gib_year, "dram_dollars_per_gib_year")
        check_positive(self.cpu_dollars_per_core_year, "cpu_dollars_per_core_year")
        check_positive(self.fleet_dram_gib, "fleet_dram_gib")

    def evaluate(
        self,
        coverage: float,
        cold_fraction: float,
        compression_ratio: float,
        cpu_cores_per_machine_overhead: float = 0.0,
        machines: int = 0,
    ) -> TcoReport:
        """Compute the TCO report for one operating point.

        Args:
            coverage: fleet cold-memory coverage (0..1), e.g. 0.20.
            cold_fraction: fraction of used memory cold at the minimum
                threshold (0..1), e.g. 0.32.
            compression_ratio: average compression ratio of compressed
                pages, e.g. 3.0 (so each compressed byte costs 1/3).
            cpu_cores_per_machine_overhead: average logical cores each
                machine spends on (de)compression (e.g. 0.001).
            machines: fleet machine count for pricing the CPU debit.
        """
        check_fraction(coverage, "coverage")
        check_fraction(cold_fraction, "cold_fraction")
        check_positive(compression_ratio, "compression_ratio")
        check_non_negative(
            cpu_cores_per_machine_overhead, "cpu_cores_per_machine_overhead"
        )
        check_non_negative(machines, "machines")

        compressed_fraction = coverage * cold_fraction
        saving_fraction = compressed_fraction * (1.0 - 1.0 / compression_ratio)
        dram_saved = (
            saving_fraction * self.fleet_dram_gib * self.dram_dollars_per_gib_year
        )
        cpu_cost = (
            cpu_cores_per_machine_overhead * machines * self.cpu_dollars_per_core_year
        )
        return TcoReport(
            dram_saving_fraction=saving_fraction,
            effective_compressed_fraction=compressed_fraction,
            dram_dollars_saved_per_year=dram_saved,
            cpu_overhead_dollars_per_year=cpu_cost,
            net_dollars_saved_per_year=dram_saved - cpu_cost,
        )
