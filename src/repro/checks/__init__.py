"""repro.checks: determinism & invariant analysis for the simulator.

Three layers:

* **Local static rules** — an AST lint engine (``repro lint``) with
  simulator-specific per-file rules: DET001 wall-clock reads, DET002
  unseeded randomness, DET003 order-sensitive accumulation from
  unordered iteration, DET004 per-page Python loops in the columnar
  kernel, FORK001 pickle-safety at the fork boundary, ACC001 float
  equality in accounting code, OBS001 metric/event name drift.
* **Flow passes** — :mod:`repro.checks.flow` (``repro lint --flow``),
  whole-program analyses over an AST call graph: FLOW001 interprocedural
  nondeterminism taint into the tick path, FLOW002 fork-boundary
  pickle-safety closure, CON001/CON002 static column contracts.
* **Runtime** — :mod:`repro.checks.invariants` accounting identities and
  :mod:`repro.checks.contracts` column-contract verification, asserted
  inside the hot paths when ``REPRO_CHECKS=1``.

See ``docs/static_analysis.md`` for the rule catalogue and the
``# repro: noqa[RULE]`` / baseline workflows.
"""

from repro.checks.core import (
    Finding,
    LintEngine,
    LintError,
    RULES,
    Rule,
    RuleVisitor,
    iter_python_files,
    register,
)
from repro.checks.invariants import (
    InvariantViolation,
    check_machine_accounting,
    check_memcg_histogram,
    check_merge_delta,
    invariants_enabled,
    set_invariants_enabled,
)

# Rule modules self-register on import (flow registers FLOW*/CON*).
from repro.checks import (  # noqa: F401  (imported for registration)
    flow,
    rules_accounting,
    rules_determinism,
    rules_fork,
    rules_obs,
)

from repro.checks.contracts import verify_column_contracts
from repro.checks.flow import FLOW_RULE_IDS, FlowResult, run_flow
from repro.checks.reporters import (
    filter_baseline,
    load_baseline,
    render_json,
    render_sarif,
    render_text,
    save_baseline,
)
from repro.checks.runner import (
    LintResult,
    check_docs_drift,
    default_flow_cache_dir,
    default_lint_paths,
    run_external_tools,
    run_lint,
)

__all__ = [
    "FLOW_RULE_IDS",
    "Finding",
    "FlowResult",
    "InvariantViolation",
    "LintEngine",
    "LintError",
    "LintResult",
    "RULES",
    "Rule",
    "RuleVisitor",
    "check_docs_drift",
    "check_machine_accounting",
    "check_memcg_histogram",
    "check_merge_delta",
    "default_flow_cache_dir",
    "default_lint_paths",
    "filter_baseline",
    "invariants_enabled",
    "iter_python_files",
    "load_baseline",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "run_external_tools",
    "run_flow",
    "run_lint",
    "save_baseline",
    "set_invariants_enabled",
]
