"""Metrics registry: types, labels, cardinality, exposition."""

import json

import pytest

from repro.obs import (
    CardinalityError,
    MetricError,
    MetricRegistry,
    NULL_REGISTRY,
    get_registry,
    set_registry,
)


def test_counter_inc_and_fleet_value():
    reg = MetricRegistry()
    c = reg.counter("repro_pages_total", "Pages.", ("machine",))
    c.labels(machine="m0").inc()
    c.labels(machine="m0").inc(4)
    c.labels(machine="m1").inc(10)
    assert c.labels(machine="m0").value == 5
    assert c.value == 15
    assert reg.value("repro_pages_total") == 15


def test_counter_rejects_negative_increment():
    reg = MetricRegistry()
    c = reg.counter("c_total")
    with pytest.raises(MetricError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    reg = MetricRegistry()
    g = reg.gauge("g")
    g.set(7)
    g.inc(3)
    g.dec(4)
    assert g.value == 6


def test_registration_is_idempotent():
    reg = MetricRegistry()
    a = reg.counter("same_total", "Help.", ("machine",))
    b = reg.counter("same_total", "Help.", ("machine",))
    assert a is b


def test_type_or_label_conflict_rejected():
    reg = MetricRegistry()
    reg.counter("m", "", ("machine",))
    with pytest.raises(MetricError):
        reg.gauge("m", "", ("machine",))
    with pytest.raises(MetricError):
        reg.counter("m", "", ("job",))


def test_invalid_names_rejected():
    reg = MetricRegistry()
    with pytest.raises(MetricError):
        reg.counter("0starts_with_digit")
    with pytest.raises(MetricError):
        reg.counter("ok", "", ("bad-label",))


def test_wrong_label_set_rejected():
    reg = MetricRegistry()
    c = reg.counter("c", "", ("machine",))
    with pytest.raises(MetricError):
        c.labels(job="j0")


def test_label_cardinality_budget():
    reg = MetricRegistry(max_series_per_metric=3)
    c = reg.counter("c", "", ("machine",))
    for i in range(3):
        c.labels(machine=f"m{i}").inc()
    with pytest.raises(CardinalityError):
        c.labels(machine="m-one-too-many")
    # Existing series still usable after the budget trips.
    c.labels(machine="m0").inc()
    assert c.value == 4


def test_histogram_percentile_interpolation():
    reg = MetricRegistry()
    h = reg.histogram("h", buckets=(1.0, 2.0, 4.0))
    h.observe_many([0.5, 1.5, 3.0, 3.5])
    assert h.count == 4
    assert h.sum == pytest.approx(8.5)
    # p50 -> target 2 of 4; second obs sits in the (1, 2] bucket.
    assert 1.0 <= h.percentile(50.0) <= 2.0
    # p100 lands in the last finite bucket.
    assert h.percentile(100.0) == pytest.approx(4.0)
    assert h.percentile(0.0) <= 1.0


def test_histogram_overflow_clamps_to_top_bucket():
    reg = MetricRegistry()
    h = reg.histogram("h", buckets=(1.0, 2.0))
    h.observe(100.0)
    assert h.percentile(99.0) == pytest.approx(2.0)


def test_histogram_merges_series_for_percentile():
    reg = MetricRegistry()
    h = reg.histogram("h", labelnames=("machine",), buckets=(1.0, 10.0))
    h.labels(machine="m0").observe_many([0.5] * 9)
    h.labels(machine="m1").observe(9.0)
    assert h.count == 10
    assert h.percentile(50.0) <= 1.0
    assert h.percentile(99.0) > 1.0


def test_histogram_rejects_bad_buckets():
    reg = MetricRegistry()
    with pytest.raises(MetricError):
        reg.histogram("h1", buckets=())
    with pytest.raises(MetricError):
        reg.histogram("h2", buckets=(1.0, float("inf")))


def test_exposition_golden():
    """Lock the Prometheus text format byte for byte."""
    reg = MetricRegistry()
    c = reg.counter("repro_pages_scanned_total", "Pages scanned.",
                    ("machine",))
    c.labels(machine="m0").inc(3)
    c.labels(machine="m1").inc(1)
    reg.gauge("repro_fleet_coverage", "Coverage.").set(0.5)
    h = reg.histogram("repro_rate", "Rate.", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(2.0)
    expected = (
        "# HELP repro_fleet_coverage Coverage.\n"
        "# TYPE repro_fleet_coverage gauge\n"
        "repro_fleet_coverage 0.5\n"
        "# HELP repro_pages_scanned_total Pages scanned.\n"
        "# TYPE repro_pages_scanned_total counter\n"
        'repro_pages_scanned_total{machine="m0"} 3\n'
        'repro_pages_scanned_total{machine="m1"} 1\n'
        "# HELP repro_rate Rate.\n"
        "# TYPE repro_rate histogram\n"
        'repro_rate_bucket{le="0.1"} 1\n'
        'repro_rate_bucket{le="1"} 2\n'
        'repro_rate_bucket{le="+Inf"} 3\n'
        "repro_rate_sum 2.55\n"
        "repro_rate_count 3\n"
    )
    assert reg.expose_text() == expected


def test_exposition_escapes_label_values():
    reg = MetricRegistry()
    reg.counter("c", "", ("j",)).labels(j='a"b\\c').inc()
    text = reg.expose_text()
    assert 'c{j="a\\"b\\\\c"} 1' in text


def test_jsonl_snapshot_parses():
    reg = MetricRegistry()
    reg.counter("c_total", "", ("machine",)).labels(machine="m0").inc(2)
    reg.histogram("h", buckets=(1.0,)).observe(0.5)
    lines = [
        json.loads(line) for line in reg.export_jsonl().splitlines() if line
    ]
    by_name = {record["name"]: record for record in lines}
    assert by_name["c_total"]["value"] == 2
    assert by_name["c_total"]["labels"] == {"machine": "m0"}
    hist = by_name["h"]
    assert hist["count"] == 1
    assert hist["buckets"][-1]["le"] == "+Inf"
    assert sum(b["count"] for b in hist["buckets"][:-1]) == 1


def test_disabled_registry_is_noop():
    reg = MetricRegistry(enabled=False)
    c = reg.counter("c_total", "Help.", ("machine",))
    c.labels(machine="m0").inc(5)
    reg.gauge("g").set(3)
    reg.histogram("h").observe(1.0)
    assert c.value == 0.0
    assert reg.expose_text() == ""
    assert reg.export_jsonl() == ""
    assert reg.metrics() == []
    assert NULL_REGISTRY.counter("x").value == 0.0


def test_global_registry_swap():
    fresh = MetricRegistry()
    previous = set_registry(fresh)
    try:
        assert get_registry() is fresh
    finally:
        set_registry(previous)
    assert get_registry() is previous


def test_reset_clears_metrics():
    reg = MetricRegistry()
    reg.counter("c").inc()
    reg.reset()
    assert reg.get("c") is None
    assert reg.expose_text() == ""
