"""End-to-end integration: the full Fig. 4 loop, invariants under churn."""

import numpy as np
import pytest

from repro.cluster import quickfleet
from repro.common.units import PAGE_SIZE
from repro.core.threshold_policy import ThresholdPolicyConfig
from repro.kernel.machine import FarMemoryMode
from repro.kernel.memcg import PageState
from repro.model.replay import FarMemoryModel
from repro.autotuner.pipeline import AutotuningPipeline


class TestFullLoop:
    def test_far_memory_materializes_and_slo_holds_roughly(self, warm_fleet):
        report = warm_fleet.coverage_report()
        assert report["coverage"] > 0.02
        assert report["saved_gib"] > 0
        # Promotion-rate SLI is finite and in a sane band.
        assert report["promotion_rate_p98_pct_per_min"] < 50.0

    def test_traces_feed_the_model_which_feeds_the_tuner(self, warm_fleet):
        model = FarMemoryModel(warm_fleet.trace_db.traces())
        pipeline = AutotuningPipeline(model, batch_size=2, seed=1)
        result = pipeline.run(iterations=2)
        assert len(result.trials) == 4

    def test_machine_accounting_invariants(self, warm_fleet):
        """Conservation: used = near + arena; far pages are backed 1:1 by
        arena objects; saved bytes are consistent."""
        for machine in warm_fleet.machines:
            assert machine.used_bytes == (
                machine.near_bytes + machine.arena.footprint_bytes
            )
            assert machine.far_pages == machine.arena.live_objects
            assert machine.free_bytes >= 0
            assert (
                machine.saved_bytes()
                == machine.far_pages * PAGE_SIZE
                - machine.arena.footprint_bytes
            )

    def test_page_state_invariants(self, warm_fleet):
        """Per-memcg: far pages are resident, never unevictable, never
        marked incompressible."""
        for machine in warm_fleet.machines:
            for memcg in machine.memcgs.values():
                far = memcg.far_mask()
                assert memcg.resident[far].all()
                assert not memcg.unevictable[far].any()
                assert not memcg.incompressible[far].any()
                assert (
                    memcg.payload_bytes[far] <= machine.zswap.max_payload_bytes
                ).all()

    def test_histogram_totals_track_residency(self, warm_fleet):
        for machine in warm_fleet.machines:
            for memcg in machine.memcgs.values():
                assert memcg.cold_age_histogram.total == memcg.resident_pages


class TestChurn:
    def test_job_churn_keeps_fleet_consistent(self):
        """Jobs with finite lifetimes come and go; accounting must hold."""
        from repro.cluster.wsc import quickfleet as make

        fleet = make(machines_per_cluster=2, jobs_per_machine=3, seed=31)
        # Give every running job a short lifetime, then run past it.
        for cluster in fleet.clusters:
            for job in cluster.running.values():
                job.spec.duration_seconds = 1800
        fleet.run(3 * 3600)
        for cluster in fleet.clusters:
            assert cluster.running == {}
            for machine in cluster.machines:
                assert machine.used_bytes == machine.arena.footprint_bytes
                assert machine.arena.live_objects == 0

    def test_ab_comparison_zswap_off_vs_on(self):
        """The control-group fleet must have zero far memory; the
        experiment fleet must save real bytes with the same workload."""
        on = quickfleet(machines_per_cluster=2, jobs_per_machine=3, seed=9)
        off = quickfleet(machines_per_cluster=2, jobs_per_machine=3, seed=9,
                         mode=FarMemoryMode.OFF)
        on.run(2 * 3600)
        off.run(2 * 3600)
        assert on.coverage() > 0
        assert off.coverage() == 0
        # Same workload: cold fractions should be in the same ballpark.
        assert on.cold_fraction(120) == pytest.approx(
            off.cold_fraction(120), abs=0.15
        )


class TestPolicyDeploymentEffect:
    def test_aggressive_policy_captures_more(self):
        conservative = quickfleet(
            machines_per_cluster=2, jobs_per_machine=3, seed=13,
            policy_config=ThresholdPolicyConfig(percentile_k=99.9,
                                                warmup_seconds=5400),
        )
        aggressive = quickfleet(
            machines_per_cluster=2, jobs_per_machine=3, seed=13,
            policy_config=ThresholdPolicyConfig(percentile_k=80.0,
                                                warmup_seconds=120),
        )
        conservative.run(2 * 3600)
        aggressive.run(2 * 3600)
        assert aggressive.coverage() > conservative.coverage()
