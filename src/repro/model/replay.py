"""The fast far memory model: offline what-if replay (paper §5.3).

Given recorded per-job traces (working set size, promotion histogram, and
cold-age histogram per 5-minute period) and a candidate parameter
configuration ``(K, S)``, the model re-runs the §4.3 control algorithm over
each trace and estimates, interval by interval, what the fleet would have
done under that configuration:

* the **size of cold memory captured** — pages whose age exceeded the
  replayed threshold (the memory that would have been in far memory), and
* the **promotion rate** — accesses that would have hit far memory,
  normalized by the working set.

The report's two headline numbers mirror the autotuner's problem
formulation: total cold memory captured (the objective) and the fleet-wide
98th-percentile normalized promotion rate (the constraint).

Replay of different jobs is independent, so the model runs as a MapReduce
pipeline (:mod:`repro.model.mapreduce`) and scales linearly with workers.
Three optimizations multiply on this path:

1. **Vectorized replay** — each trace compiles once into dense suffix-sum
   tensors (:class:`repro.model.trace.CompiledTrace`) and the §4.3 policy
   is replayed over arrays (:func:`replay_compiled`).  The scalar
   interval-by-interval loop (:func:`_replay_one_job`) stays as the
   semantic oracle; both produce bit-identical reports.
2. **Batched evaluation** — :meth:`FarMemoryModel.evaluate_many` replays a
   whole batch of candidate configurations in *one* MapReduce: each map
   task replays every config of the batch against one compiled trace, so
   the per-interval best thresholds (config-independent) are computed once
   per trace per batch, not once per trace per config.
3. **Persistent pool** — the MapReduce pool outlives individual runs and
   an initializer ships the compiled traces to each worker once per model,
   so successive autotuner batches pay no per-batch serialization of the
   fleet traces.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import MINUTE
from repro.core.slo import PromotionRateSlo, normalized_promotion_rate
from repro.core.threshold_policy import (
    ColdAgeThresholdPolicy,
    ThresholdPolicyConfig,
    best_thresholds_vectorized,
    replay_thresholds_vectorized,
)
from repro.model.mapreduce import MapReduce
from repro.model.trace import TRACE_PERIOD_SECONDS, CompiledTrace, JobTrace
from repro.obs import MetricName, get_registry, get_tracer, Stopwatch

__all__ = [
    "JobReplayResult",
    "FleetReplayReport",
    "FarMemoryModel",
    "replay_compiled",
]


@dataclass
class JobReplayResult:
    """Replay outcome for one job under one configuration.

    Attributes:
        job_id: the replayed job.
        cold_pages_captured: per-interval pages the replayed threshold
            would have put in far memory.
        normalized_rates: per-interval promotion rate, % of WSS per minute.
        thresholds: per-interval threshold the policy chose (inf=disabled).
        intervals: number of trace intervals replayed.
    """

    job_id: str
    cold_pages_captured: List[float] = field(default_factory=list)
    normalized_rates: List[float] = field(default_factory=list)
    thresholds: List[float] = field(default_factory=list)

    @property
    def intervals(self) -> int:
        return len(self.thresholds)

    @property
    def mean_cold_pages(self) -> float:
        """Average far-memory size this job would have sustained."""
        if not self.cold_pages_captured:
            return 0.0
        return float(np.mean(self.cold_pages_captured))


@dataclass
class FleetReplayReport:
    """Fleet aggregation of per-job replay results.

    Attributes:
        config: the configuration replayed.
        total_cold_pages: mean-over-time, summed-over-jobs far memory size
            (the autotuner's objective).
        promotion_rate_p98: fleet-wide 98th percentile of per-job,
            per-interval normalized promotion rates (the constraint).
        slo_target: the SLO the constraint is checked against.
        job_results: per-job detail.
    """

    config: ThresholdPolicyConfig
    total_cold_pages: float
    promotion_rate_p98: float
    slo_target: float
    job_results: List[JobReplayResult]

    @property
    def meets_slo(self) -> bool:
        """True when the replayed p98 promotion rate is within the SLO."""
        return self.promotion_rate_p98 <= self.slo_target


def _replay_one_job(
    trace: JobTrace,
    config: ThresholdPolicyConfig,
    slo: PromotionRateSlo,
) -> JobReplayResult:
    """Replay the control algorithm over one job's trace (scalar oracle).

    For each interval the threshold chosen from history *before* observing
    the interval governs it — exactly the online ordering, where the agent
    publishes a threshold and the next minute runs under it.  This is the
    reference implementation :func:`replay_compiled` is proven against.
    """
    result = JobReplayResult(job_id=trace.job_id)
    if not trace.entries:
        return result
    bins = trace.entries[0].bins
    policy = ColdAgeThresholdPolicy(config, bins, slo)
    for entry in trace.entries:
        threshold = policy.threshold()
        result.thresholds.append(threshold)

        if np.isfinite(threshold):
            captured = entry.cold_age_histogram.colder_than(threshold)
            promoted = entry.promotion_histogram.colder_than(threshold)
        else:
            captured = 0
            promoted = 0
        per_min = promoted * (MINUTE / TRACE_PERIOD_SECONDS)
        result.cold_pages_captured.append(float(captured))
        result.normalized_rates.append(
            normalized_promotion_rate(per_min, entry.working_set_pages)
        )
        policy.observe(
            entry.promotion_histogram,
            entry.working_set_pages,
            TRACE_PERIOD_SECONDS,
        )
    return result


def replay_compiled(
    compiled: CompiledTrace,
    configs: Sequence[ThresholdPolicyConfig],
    slo: PromotionRateSlo,
) -> List[JobReplayResult]:
    """Vectorized replay of one compiled trace under a batch of configs.

    The per-interval *best* thresholds depend only on the trace and the
    SLO, never on ``(K, S)`` — so they are computed once here and shared
    across the whole config batch; only the rolling-percentile decode and
    the histogram lookups are per-config.  Every arithmetic step mirrors
    :func:`_replay_one_job` operation for operation, so results are
    bit-identical to the scalar oracle.
    """
    if compiled.intervals == 0 or compiled.bins is None:
        return [JobReplayResult(job_id=compiled.job_id) for _ in configs]
    best = best_thresholds_vectorized(
        compiled.promotion_suffix_sums[:, :-1],
        compiled.working_set_pages,
        compiled.bins,
        slo,
        compiled.interval_seconds,
    )
    wss = compiled.working_set_pages.astype(float)
    results: List[JobReplayResult] = []
    for config in configs:
        thresholds = replay_thresholds_vectorized(
            best, config, compiled.bins, compiled.interval_seconds
        )
        captured = compiled.colder_than(thresholds, cold=True).astype(float)
        promoted = compiled.colder_than(thresholds, cold=False)
        per_min = promoted * (MINUTE / compiled.interval_seconds)
        with np.errstate(divide="ignore", invalid="ignore"):
            rates = np.where(
                wss > 0.0,
                (100.0 * per_min) / wss,
                np.where(per_min <= 0.0, 0.0, float("inf")),
            )
        results.append(
            JobReplayResult(
                job_id=compiled.job_id,
                cold_pages_captured=captured.tolist(),
                normalized_rates=rates.tolist(),
                thresholds=thresholds.tolist(),
            )
        )
    return results


# ----------------------------------------------------------------------
# Worker-side state for the persistent pool
# ----------------------------------------------------------------------
#
# The pool initializer runs once per worker process and parks the model's
# replay payload (compiled traces — or raw traces for the scalar oracle)
# in this module-global dict, keyed by a per-model token so several models
# sharing one process (workers=1 runs in-process) never clobber each
# other.  Map tasks then carry only ``(trace_index, configs)``.

_ReplayPayload = Union[List[CompiledTrace], List[JobTrace]]
_WORKER_STATE: Dict[str, Tuple[_ReplayPayload, PromotionRateSlo]] = {}
_MODEL_TOKENS = itertools.count()


def _init_model_worker(
    token: str, payload: _ReplayPayload, slo: PromotionRateSlo
) -> None:
    """Pool initializer: receive the replay payload once per worker."""
    _WORKER_STATE[token] = (payload, slo)


def _replay_batch_task(
    task: Tuple[int, List[ThresholdPolicyConfig]],
    token: str,
    vectorized: bool,
) -> List[JobReplayResult]:
    """One map task: replay the whole config batch against one trace."""
    index, configs = task
    payload, slo = _WORKER_STATE[token]
    unit = payload[index]
    if vectorized:
        return replay_compiled(unit, configs, slo)
    return [_replay_one_job(unit, config, slo) for config in configs]


def _collect(mapped: List[List[JobReplayResult]]) -> List[List[JobReplayResult]]:
    """Identity reducer: the fleet reduction is per-config, done by the model."""
    return mapped


class FarMemoryModel:
    """Replays fleet traces under candidate configurations.

    Traces compile lazily on first evaluation; the MapReduce pool (when
    ``workers > 1``) starts lazily, persists across evaluations, and ships
    the compiled traces to each worker once via the pool initializer.
    Call :meth:`close` (or use the model as a context manager) to tear the
    pool down.

    Args:
        traces: per-job traces (e.g. ``trace_db.traces()``), or
            already-compiled :class:`CompiledTrace` tensors (e.g. a
            columnar store's ``compiled_traces()``) — the latter skip
            object materialization entirely but require the vectorized
            replay path.
        slo: the promotion-rate SLO used both inside the policy and as the
            fleet constraint.
        workers: MapReduce worker processes (1 = in-process).
        vectorized: replay compiled tensors (default) or drive the scalar
            policy loop per interval (the reference oracle — identical
            results, orders of magnitude slower).
        registry: metrics registry (defaults to the process registry).
        tracer: span tracer (defaults to the process tracer).
    """

    def __init__(
        self,
        traces: Sequence[Union[JobTrace, CompiledTrace]],
        slo: Optional[PromotionRateSlo] = None,
        workers: int = 1,
        vectorized: bool = True,
        registry=None,
        tracer=None,
    ):
        items = list(traces)
        precompiled = [t for t in items if isinstance(t, CompiledTrace)]
        if precompiled and len(precompiled) != len(items):
            raise ConfigurationError(
                "traces must be all JobTrace or all CompiledTrace, not a mix"
            )
        if precompiled and not vectorized:
            raise ConfigurationError(
                "pre-compiled traces have no entries to drive the scalar "
                "oracle; use vectorized=True"
            )
        self.traces = [] if precompiled else items
        self.slo = slo if slo is not None else PromotionRateSlo()
        self.workers = workers
        self.vectorized = vectorized
        registry = registry if registry is not None else get_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        self._m_configs = registry.counter(
            MetricName.MODEL_CONFIGS_EVALUATED_TOTAL,
            "Candidate configurations evaluated by the fast model.",
        )
        self._m_seconds = registry.histogram(
            MetricName.MODEL_EVALUATION_SECONDS,
            "Wall seconds per evaluate_many batch.",
        )
        self._m_compiled = registry.counter(
            MetricName.MODEL_TRACES_COMPILED_TOTAL,
            "Job traces compiled into replay tensors.",
        )
        self._compiled: Optional[List[CompiledTrace]] = (
            precompiled if precompiled else None
        )
        self._pipeline: Optional[MapReduce] = None
        self._token: Optional[str] = None

    # ------------------------------------------------------------------
    # Lazy compilation & pool lifecycle
    # ------------------------------------------------------------------

    @property
    def compiled_traces(self) -> List[CompiledTrace]:
        """The traces as replay tensors (compiled once, cached)."""
        if self._compiled is None:
            with self._tracer.span("model.compile"):
                self._compiled = [trace.compile() for trace in self.traces]
            self._m_compiled.inc(len(self._compiled))
        return self._compiled

    def _ensure_pipeline(self) -> MapReduce:
        if self._pipeline is None:
            payload: _ReplayPayload = (
                self.compiled_traces if self.vectorized else self.traces
            )
            self._token = f"model-{next(_MODEL_TOKENS)}"
            self._pipeline = MapReduce(
                mapper=functools.partial(
                    _replay_batch_task,
                    token=self._token,
                    vectorized=self.vectorized,
                ),
                reducer=_collect,
                workers=self.workers,
                initializer=_init_model_worker,
                initargs=(self._token, payload, self.slo),
            )
        return self._pipeline

    def close(self) -> None:
        """Shut the worker pool down and drop in-process worker state."""
        if self._pipeline is not None:
            self._pipeline.close()
            self._pipeline = None
        if self._token is not None:
            _WORKER_STATE.pop(self._token, None)
            self._token = None

    def __enter__(self) -> "FarMemoryModel":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, config: ThresholdPolicyConfig) -> FleetReplayReport:
        """What-if analysis of one configuration over the whole fleet."""
        return self.evaluate_many([config])[0]

    def evaluate_many(
        self, configs: Sequence[ThresholdPolicyConfig]
    ) -> List[FleetReplayReport]:
        """Evaluate a batch of configurations in one MapReduce.

        Each map task replays the *entire* batch against one trace, so the
        per-trace best-threshold pass amortizes across the batch and a
        fleet of N traces costs N tasks regardless of batch size.  Reports
        come back in ``configs`` order.
        """
        configs = list(configs)
        if not configs:
            return []
        pipeline = self._ensure_pipeline()
        n_traces = (
            len(self.compiled_traces) if self.vectorized else len(self.traces)
        )
        tasks = [(index, configs) for index in range(n_traces)]
        with self._tracer.span("model.evaluate_many", batch=len(configs)):
            with Stopwatch() as watch:
                per_trace = pipeline.run(tasks)
        self._m_configs.inc(len(configs))
        self._m_seconds.observe(watch.seconds)
        reports = []
        for j, config in enumerate(configs):
            results = [per_trace[i][j] for i in range(n_traces)]
            reports.append(_reduce_fleet(results, config=config, slo=self.slo))
        return reports


def _reduce_fleet(
    results: List[JobReplayResult],
    config: ThresholdPolicyConfig,
    slo: PromotionRateSlo,
) -> FleetReplayReport:
    """Combine per-job replays into the fleet report."""
    total_cold = sum(r.mean_cold_pages for r in results)
    rates = np.concatenate(
        [np.asarray(r.normalized_rates) for r in results if r.normalized_rates]
        or [np.zeros(0)]
    )
    finite = rates[np.isfinite(rates)]
    p98 = float(np.percentile(finite, 98.0)) if finite.size else 0.0
    return FleetReplayReport(
        config=config,
        total_cold_pages=total_cold,
        promotion_rate_p98=p98,
        slo_target=slo.target_pct_per_min,
        job_results=results,
    )
