"""Runtime invariant checks, toggled by ``REPRO_CHECKS=1``.

The static rules in ``repro.checks`` catch hazards that are visible in
the source; this module catches the ones that are only visible in live
state.  Each check asserts an accounting identity the simulator's
correctness story depends on:

* **machine accounting** — the zswap/zsmalloc view of far memory and
  the per-memcg view must agree (``arena.live_objects == Σ far_pages``,
  ``arena.payload_bytes == Σ payload_bytes[far]``) and compression can
  never *grow* memory (``footprint >= payload``).
* **memcg histogram** — the incremental cold-age histogram maintained by
  ``scan_update`` must match a from-scratch rebuild (the ground truth
  the K-th percentile threshold policy reads).
* **delta merge** — metric deltas shipped across the fork boundary must
  conserve mass: counter increments are non-negative and a histogram
  record's ``count`` equals the sum of its bucket increments.

All checks are free when disabled: call sites guard with
:func:`invariants_enabled`, which is a cached environment read.  Enable
with ``REPRO_CHECKS=1`` (any of ``1/true/yes/on``) or, in tests, with
:func:`set_invariants_enabled`.

This module deliberately imports nothing from ``kernel``/``engine``
(they import *us*); checks duck-type their arguments.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.common.errors import ReproError

__all__ = [
    "InvariantViolation",
    "check_machine_accounting",
    "check_memcg_histogram",
    "check_merge_delta",
    "invariants_enabled",
    "set_invariants_enabled",
]

#: Environment variable that switches the checks on.
ENV_VAR = "REPRO_CHECKS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Tri-state override: None -> consult the environment (cached).
_override: Optional[bool] = None
_env_cache: Optional[bool] = None


class InvariantViolation(ReproError):
    """A runtime accounting identity does not hold."""


def invariants_enabled() -> bool:
    """Whether runtime invariant checks are on (cheap: cached env read)."""
    global _env_cache
    if _override is not None:
        return _override
    if _env_cache is None:
        _env_cache = os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY
    return _env_cache


def set_invariants_enabled(flag: Optional[bool]) -> None:
    """Force checks on/off (tests), or ``None`` to re-read the environment."""
    global _override, _env_cache
    _override = flag
    _env_cache = None


def _violation(name: str, detail: str) -> "InvariantViolation":
    return InvariantViolation(f"invariant {name!r} violated: {detail}")


def check_machine_accounting(machine: Any) -> None:
    """Zswap pool-size accounting: arena totals == Σ per-memcg far state.

    Args:
        machine: a :class:`repro.kernel.machine.Machine` (duck-typed:
            needs ``arena`` and ``memcgs``).
    """
    arena = machine.arena
    memcgs = list(machine.memcgs.values())
    far_pages = sum(int(m.far_pages) for m in memcgs)
    if int(arena.live_objects) != far_pages:
        raise _violation(
            "machine.far_pages",
            f"arena holds {arena.live_objects} objects but memcgs report "
            f"{far_pages} far pages (machine={machine.machine_id!r})",
        )
    payload = sum(int(m.payload_bytes[m.far_mask()].sum()) for m in memcgs)
    if int(arena.payload_bytes) != payload:
        raise _violation(
            "machine.payload_bytes",
            f"arena payload {arena.payload_bytes}B != Σ memcg far payload "
            f"{payload}B (machine={machine.machine_id!r})",
        )
    if int(arena.footprint_bytes) < int(arena.payload_bytes):
        raise _violation(
            "machine.footprint",
            f"arena footprint {arena.footprint_bytes}B is below its payload "
            f"{arena.payload_bytes}B — zspage accounting lost mass "
            f"(machine={machine.machine_id!r})",
        )


def check_memcg_histogram(memcg: Any) -> None:
    """Incremental cold-age histogram == from-scratch rebuild.

    Rebuilding *is* the ground-truth computation, so on success the memcg
    is left bit-identical; on failure the error carries both views.

    Args:
        memcg: a :class:`repro.kernel.memcg.MemCg` (duck-typed: needs
            ``cold_age_histogram`` and ``_rebuild_cold_histogram``).
    """
    incremental = memcg.cold_age_histogram.copy()
    memcg._rebuild_cold_histogram()
    truth = memcg.cold_age_histogram
    if (
        incremental.young_count != truth.young_count
        or not np.array_equal(incremental.counts, truth.counts)
    ):
        raise _violation(
            "memcg.cold_histogram",
            f"incremental {incremental!r} != rebuilt {truth!r} "
            f"(job={getattr(memcg, 'job_id', '?')!r})",
        )


def check_merge_delta(records: Iterable[Dict[str, object]]) -> None:
    """Delta-merge conservation for fork-boundary metric shipments.

    Args:
        records: the record list produced by ``MetricRegistry.delta``.
    """
    for record in records:
        name = record.get("name", "?")
        kind = record.get("kind")
        if kind == "counter":
            value = float(record["value"])  # type: ignore[arg-type]
            if value < 0:
                raise _violation(
                    "merge.counter_monotonic",
                    f"counter {name!r} shipped a negative increment "
                    f"({value}); counters only go up",
                )
        elif kind == "histogram":
            buckets: List[Dict[str, object]] = record["buckets"]  # type: ignore[assignment]
            bucket_total = sum(int(b["count"]) for b in buckets)  # type: ignore[arg-type]
            count = int(record["count"])  # type: ignore[arg-type]
            if bucket_total != count:
                raise _violation(
                    "merge.histogram_mass",
                    f"histogram {name!r} delta count {count} != Σ bucket "
                    f"increments {bucket_total}; mass was lost in transit",
                )
            if count < 0 or any(int(b["count"]) < 0 for b in buckets):  # type: ignore[arg-type]
                raise _violation(
                    "merge.histogram_monotonic",
                    f"histogram {name!r} shipped negative increments",
                )
