"""Determinism rules: wall clocks, unseeded RNG, unordered iteration.

The simulator's replayability rests on three pillars (PR 2's
serial ≡ parallel bit-equivalence contract makes all three load-bearing):

* **DET001** — simulation logic must read :class:`repro.common.simtime`
  clocks, never the wall clock.  Wall time is allowed only in the
  observability layer (``obs/``, which *measures* wall time by design)
  and the throughput harnesses (``engine/bench.py``,
  ``model/bench.py``).
* **DET002** — all randomness must flow through
  :class:`repro.common.rng.SeedSequenceFactory` (or an explicitly seeded
  ``np.random.Generator``); the stdlib ``random`` module and numpy's
  legacy global RNG are process-global mutable state that any import can
  perturb.
* **DET003** — in the ``engine/`` and ``kernel/`` hot paths, iterating a
  dict/set view into an *ordered* accumulator is a shard-merge hazard:
  the parallel engine rebuilds those containers per worker, so insertion
  order (and hence the accumulated order) can differ from a serial run.
  Wrap the view in ``sorted(...)`` or accumulate order-insensitively.
* **DET004** — the columnar kernel's whole point is that per-page work
  runs as whole-array sweeps; a Python ``for`` over the page axis
  (a pool column, a mask over one, or a ``range`` sized by one) quietly
  reintroduces the per-page interpreter cost the backend exists to
  remove.  Loops over the *row/memcg* axis (``per_row`` bincounts, the
  memcg list) are the intended granularity and are not flagged.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.checks.core import Rule, RuleVisitor, register

__all__ = [
    "PerPageLoopRule",
    "UnorderedIterationRule",
    "UnseededRandomnessRule",
    "WallClockRule",
]


#: Wall-clock reads that make a run irreproducible.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: numpy legacy global-RNG entry points (np.random.<fn> without a
#: Generator): every one reads/mutates hidden process-global state.
_NP_LEGACY_FNS = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "bytes",
        "normal", "uniform", "poisson", "exponential", "beta", "gamma",
        "binomial", "standard_normal", "get_state", "set_state",
    }
)


class _WallClockVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        name = self.dotted_name(node.func)
        if name in _WALL_CLOCK_CALLS:
            self.report(
                node,
                f"wall-clock read `{name}()` outside the allowlist; "
                f"simulation code must use repro.common.simtime",
            )
        self.generic_visit(node)


@register
class WallClockRule(Rule):
    """DET001: no wall-clock reads outside obs/ and engine/bench.py."""

    id = "DET001"
    title = "wall-clock read in simulation code"
    allowlist = ("repro/obs/", "repro/engine/bench.py", "repro/model/bench.py")
    visitor_class = _WallClockVisitor


class _UnseededRandomnessVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        name = self.dotted_name(node.func)
        if name is not None:
            self._check(node, name)
        self.generic_visit(node)

    def _check(self, node: ast.Call, name: str) -> None:
        # stdlib random: both random.random() and `from random import x`.
        if name.startswith("random.") and name.count(".") == 1:
            self.report(
                node,
                f"stdlib RNG `{name}()` draws from process-global state; "
                f"route randomness through repro.common.rng",
            )
            return
        # numpy legacy global RNG: np.random.<fn>().
        if name.startswith("numpy.random."):
            fn = name.rsplit(".", 1)[1]
            if fn in _NP_LEGACY_FNS:
                self.report(
                    node,
                    f"legacy numpy global RNG `{name}()`; use "
                    f"repro.common.rng streams or a seeded "
                    f"np.random.Generator",
                )
            elif fn == "default_rng" and not node.args and not node.keywords:
                self.report(
                    node,
                    "`np.random.default_rng()` without a seed is entropy-"
                    "seeded; pass a seed (or use repro.common.rng)",
                )


@register
class UnseededRandomnessRule(Rule):
    """DET002: no unseeded / process-global randomness anywhere."""

    id = "DET002"
    title = "unseeded or process-global randomness"
    #: common/rng.py is the one place allowed to build generators.
    allowlist = ("repro/common/rng.py",)
    visitor_class = _UnseededRandomnessVisitor


_VIEW_METHODS = frozenset({"keys", "values", "items"})
#: List mutations that make accumulation order-sensitive.
_ORDERED_SINKS = frozenset({"append", "extend", "insert"})


def _unordered_iterable(node: ast.AST) -> Optional[str]:
    """Describe ``node`` if it is a dict view / set expression, else None."""
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _VIEW_METHODS
            and not node.args
        ):
            return f"dict .{func.attr}() view"
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}()"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    return None


class _UnorderedIterationVisitor(RuleVisitor):
    def visit_For(self, node: ast.For) -> None:
        described = _unordered_iterable(node.iter)
        if described is not None and self._accumulates(node.body):
            self.report(
                node,
                f"iteration over {described} feeds an ordered accumulator; "
                f"wrap the iterable in sorted(...) so shard-merge order "
                f"cannot leak into results",
            )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for gen in node.generators:
            described = _unordered_iterable(gen.iter)
            if described is not None:
                self.report(
                    node,
                    f"list built from {described}; wrap the iterable in "
                    f"sorted(...) so shard-merge order cannot leak into "
                    f"results",
                )
                break
        self.generic_visit(node)

    def _accumulates(self, body: List[ast.stmt]) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _ORDERED_SINKS
                ):
                    return True
                if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                    return True
        return False


@register
class UnorderedIterationRule(Rule):
    """DET003: dict/set iteration -> ordered accumulation in hot paths."""

    id = "DET003"
    title = "order-sensitive accumulation from unordered iteration"
    path_fragments = ("repro/engine/", "repro/kernel/", "fixtures/lint/")
    visitor_class = _UnorderedIterationVisitor


#: The pooled per-page columns of ``repro.kernel.columnar`` (plus the
#: page-count attributes that size them).  An expression touching one of
#: these carries the *page axis*: machine-length, one element per page.
_PAGE_AXIS_ATTRS = frozenset(
    {
        "resident", "age_scans", "accessed", "state", "incompressible",
        "dirtied", "unevictable", "payload_bytes", "lru_active",
        "huge_group", "hist_bin", "reclaim_mask", "owner_row",
        "used", "capacity_pages",
    }
)

#: Calls whose result keeps the page axis of their array argument.
#: Anything else (``np.bincount``, ``np.unique``, reductions, ``list``,
#: ``zip``...) collapses or re-partitions the axis, so its result is
#: *not* treated as per-page — that is what keeps the row-axis
#: ``np.flatnonzero(per_row)`` loop and the per-memcg loops clean.
_PAGE_AXIS_PRESERVING = frozenset(
    {
        "range",
        "numpy.flatnonzero",
        "numpy.nonzero",
        "numpy.where",
        "numpy.sort",
        "numpy.minimum",
        "numpy.maximum",
        "numpy.clip",
        "numpy.abs",
        "numpy.asarray",
        "numpy.copy",
        "numpy.ascontiguousarray",
    }
)


class _PerPageLoopVisitor(RuleVisitor):
    """Flags ``for``/comprehension iteration over page-axis expressions.

    Page-axis-ness is tracked through simple local assignments
    (``res = self.resident[:u]`` makes ``res`` page-axis; a later
    rebinding to a non-page expression clears it), through subscripts,
    boolean/arithmetic combinations, and the axis-preserving numpy
    calls above.  Tuples and lists are never page-axis: iterating a
    tuple *of* arrays visits the arrays, not the pages.
    """

    def __init__(self, rule: Rule, ctx) -> None:
        super().__init__(rule, ctx)
        self._page_names: Set[str] = set()

    def _is_page_axis(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._page_names
        if isinstance(node, ast.Attribute):
            return node.attr in _PAGE_AXIS_ATTRS
        if isinstance(node, ast.Subscript):
            return self._is_page_axis(node.value)
        if isinstance(node, ast.BinOp):
            return self._is_page_axis(node.left) or self._is_page_axis(
                node.right
            )
        if isinstance(node, ast.UnaryOp):
            return self._is_page_axis(node.operand)
        if isinstance(node, ast.BoolOp):
            return any(self._is_page_axis(v) for v in node.values)
        if isinstance(node, ast.Compare):
            return self._is_page_axis(node.left) or any(
                self._is_page_axis(c) for c in node.comparators
            )
        if isinstance(node, ast.Call):
            name = self.dotted_name(node.func)
            if name in _PAGE_AXIS_PRESERVING:
                return any(self._is_page_axis(arg) for arg in node.args)
            return False
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if self._is_page_axis(node.value):
                self._page_names.add(name)
            else:
                self._page_names.discard(name)
        self.generic_visit(node)

    def _report_loop(self, node: ast.AST, iterable: ast.AST) -> None:
        described = ast.unparse(iterable)
        if len(described) > 48:
            described = described[:45] + "..."
        self.report(
            node,
            f"Python loop over the page axis (`{described}`); the "
            f"columnar kernel must sweep per-page state with whole-"
            f"array ops (see MachinePagePool.scan_all)",
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_page_axis(node.iter):
            self._report_loop(node, node.iter)
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        for gen in node.generators:
            if self._is_page_axis(gen.iter):
                self._report_loop(node, gen.iter)
                break
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension
    visit_DictComp = _check_comprehension


@register
class PerPageLoopRule(Rule):
    """DET004: per-page Python loops in the columnar kernel."""

    id = "DET004"
    title = "per-page Python loop in the columnar kernel"
    path_fragments = ("repro/kernel/columnar.py", "fixtures/lint/kernel/")
    visitor_class = _PerPageLoopVisitor
