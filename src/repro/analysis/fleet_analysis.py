"""Fleet-level analyses behind each evaluation figure.

Every function here computes one figure's data series from either the live
fleet (:class:`~repro.cluster.wsc.WSC`) or recorded traces, so benchmarks
and examples share a single implementation of each figure's arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.units import MINUTE
from repro.cluster.wsc import WSC
from repro.core.histograms import AgeHistogram
from repro.model.trace import TRACE_PERIOD_SECONDS, JobTrace

__all__ = [
    "ThresholdSweepPoint",
    "cold_memory_vs_threshold",
    "per_job_cold_fractions",
    "per_machine_cold_fractions_by_cluster",
    "per_machine_coverage_by_cluster",
    "cpu_overhead_per_job",
    "cpu_overhead_per_machine",
    "compression_ratios_per_job",
    "decompression_latency_samples",
]


@dataclass(frozen=True)
class ThresholdSweepPoint:
    """One point of the Fig. 1 sweep.

    Attributes:
        threshold_seconds: the cold-age threshold T.
        cold_fraction: fleet share of memory idle >= T.
        promotion_rate_pct_of_cold_per_min: fleet accesses to that cold
            memory, as % of the cold size per minute.
    """

    threshold_seconds: int
    cold_fraction: float
    promotion_rate_pct_of_cold_per_min: float


def cold_memory_vs_threshold(
    traces: Sequence[JobTrace],
) -> List[ThresholdSweepPoint]:
    """Fig. 1: cold memory % and promotion rate under each threshold T.

    Aggregates every trace entry in the fleet: for each candidate T, the
    cold fraction is total pages idle >= T over total resident pages, and
    the promotion rate is accesses-to-pages-older-than-T per minute,
    expressed as a percentage of the cold size (the paper's "applications
    access 15 % of their total cold memory every minute" at T = 120 s).
    """
    entries = [entry for trace in traces for entry in trace.entries]
    if not entries:
        return []
    bins = entries[0].bins
    cold = AgeHistogram.merge([e.cold_age_histogram for e in entries])
    promo = AgeHistogram.merge([e.promotion_histogram for e in entries])
    total_resident = sum(e.resident_pages for e in entries)
    intervals = len(entries)

    points = []
    cold_suffix = cold.suffix_sums()
    promo_suffix = promo.suffix_sums()
    for threshold, cold_pages, promos in zip(
        bins.thresholds, cold_suffix, promo_suffix
    ):
        promos_per_min = promos * (MINUTE / TRACE_PERIOD_SECONDS) / intervals
        cold_per_entry = cold_pages / intervals
        points.append(
            ThresholdSweepPoint(
                threshold_seconds=int(threshold),
                cold_fraction=(
                    cold_pages / total_resident if total_resident else 0.0
                ),
                promotion_rate_pct_of_cold_per_min=(
                    100.0 * promos_per_min / cold_per_entry
                    if cold_per_entry
                    else 0.0
                ),
            )
        )
    return points


def per_job_cold_fractions(
    traces: Sequence[JobTrace], threshold_seconds: Optional[int] = None
) -> List[float]:
    """Fig. 3: each job's average cold share of its resident memory."""
    fractions = []
    for trace in traces:
        cold = 0
        resident = 0
        for entry in trace.entries:
            t = (
                threshold_seconds
                if threshold_seconds is not None
                else entry.bins.min_threshold
            )
            cold += entry.cold_age_histogram.colder_than(t)
            resident += entry.resident_pages
        if resident:
            fractions.append(cold / resident)
    return fractions


def per_machine_cold_fractions_by_cluster(
    fleet: WSC, threshold_seconds: float
) -> Dict[str, List[float]]:
    """Fig. 2: per-machine cold fractions, grouped by cluster."""
    return {
        cluster.name: cluster.machine_cold_fractions(threshold_seconds)
        for cluster in fleet.clusters
    }


def per_machine_coverage_by_cluster(fleet: WSC) -> Dict[str, List[float]]:
    """Fig. 6: per-machine coverage, grouped by cluster."""
    return {
        cluster.name: cluster.machine_coverages() for cluster in fleet.clusters
    }


def cpu_overhead_per_job(
    fleet: WSC, elapsed_seconds: float
) -> Tuple[List[float], List[float]]:
    """Fig. 8 (left): per-job (compression %, decompression %) of job CPU.

    Overhead is zswap CPU seconds over the job's total CPU seconds
    (``cpu_cores * elapsed``), in percent.
    """
    compress_pcts = []
    decompress_pcts = []
    for cluster in fleet.clusters:
        for machine in cluster.machines:
            for job_id in machine.memcgs:
                stats = machine.zswap.stats_for(job_id)
                cores = cluster._cpu_of(job_id)
                cpu_seconds = cores * elapsed_seconds
                if cpu_seconds <= 0:
                    continue
                compress_pcts.append(100.0 * stats.compress_seconds / cpu_seconds)
                decompress_pcts.append(
                    100.0 * stats.decompress_seconds / cpu_seconds
                )
    return compress_pcts, decompress_pcts


def cpu_overhead_per_machine(
    fleet: WSC, elapsed_seconds: float, cores_per_machine: int = 36
) -> Tuple[List[float], List[float]]:
    """Fig. 8 (right): per-machine zswap overhead as % of machine CPU."""
    compress_pcts = []
    decompress_pcts = []
    machine_cpu_seconds = cores_per_machine * elapsed_seconds
    for machine in fleet.machines:
        compress = sum(
            s.compress_seconds for s in machine.zswap.job_stats.values()
        )
        decompress = sum(
            s.decompress_seconds for s in machine.zswap.job_stats.values()
        )
        compress_pcts.append(100.0 * compress / machine_cpu_seconds)
        decompress_pcts.append(100.0 * decompress / machine_cpu_seconds)
    return compress_pcts, decompress_pcts


def compression_ratios_per_job(fleet: WSC) -> List[float]:
    """Fig. 9a: each job's average compression ratio (stored pages only)."""
    ratios = []
    for machine in fleet.machines:
        for stats in machine.zswap.job_stats.values():
            if stats.pages_compressed > 0:
                ratios.append(stats.mean_compression_ratio)
    return ratios


def decompression_latency_samples(fleet: WSC) -> List[float]:
    """Fig. 9b: pooled per-page decompression latencies (seconds)."""
    samples: List[float] = []
    for machine in fleet.machines:
        for stats in machine.zswap.job_stats.values():
            samples.extend(stats.decompress_latencies)
    return samples
