"""Fleet job-mix generation.

Real WSCs run thousands of heterogeneous jobs; the paper's Figs. 2/3 show
per-job cold fractions spanning <9 % (bottom decile) to >=43 % (top decile)
with a fleet mean around 32 % at T = 120 s.  :class:`FleetMixGenerator`
draws job specs whose cold-fraction distribution, sizes, priorities, and
content kinds reproduce that heterogeneity, so cluster-level results
inherit realistic variance rather than being an artifact of identical
jobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.common.rng import SeedSequenceFactory
from repro.common.units import DAY, GIB, HOUR, MIB, PAGE_SIZE
from repro.common.validation import check_fraction, check_positive
from repro.kernel.compression import ContentProfile
from repro.workloads.access_patterns import (
    AccessPattern,
    DiurnalModulation,
    HeterogeneousPoissonPattern,
    PhasedPattern,
    ZipfianPattern,
    make_rates_for_cold_fraction,
)
from repro.workloads.content import CONTENT_PROFILES

__all__ = ["JobSpec", "GeneratedPatternFactory", "FleetMixGenerator"]

#: Factory signature: given an RNG, build this job's access pattern.
PatternFactory = Callable[[np.random.Generator], AccessPattern]


@dataclass(frozen=True)
class GeneratedPatternFactory:
    """Picklable access-pattern factory for generated jobs.

    :class:`FleetMixGenerator` pre-draws the style and modulation
    parameters and captures them here instead of in a closure, so job
    specs (and the clusters holding them) survive a trip through pickle —
    a requirement of the parallel fleet engine.

    Attributes:
        style: "poisson", "zipf", or "phased".
        pages: the job's footprint in pages.
        cold: the cold-fraction target the pattern is tuned for.
        diurnal: whether to wrap the pattern in diurnal modulation.
        amplitude: diurnal modulation amplitude.
        phase_seconds: diurnal phase offset.
    """

    style: str
    pages: int
    cold: float
    diurnal: bool
    amplitude: float
    phase_seconds: int

    def __call__(self, pattern_rng: np.random.Generator) -> AccessPattern:
        if self.style == "zipf":
            # Zipf head covering ~(1-cold) of pages needs alpha tuned to
            # the cold target; steeper alpha = smaller effective head.
            alpha = 1.0 + self.cold
            inner: AccessPattern = ZipfianPattern(
                self.pages, accesses_per_second=self.pages / 200.0, alpha=alpha
            )
        elif self.style == "phased":
            inner = PhasedPattern(
                self.pages,
                hot_fraction=max(0.02, 1.0 - self.cold - 0.2),
                phase_seconds=int(pattern_rng.integers(1 * HOUR, 6 * HOUR)),
            )
        else:
            rates = make_rates_for_cold_fraction(
                self.pages, self.cold, pattern_rng
            )
            inner = HeterogeneousPoissonPattern(rates)
        if self.diurnal:
            return DiurnalModulation(inner, amplitude=self.amplitude,
                                     phase_seconds=self.phase_seconds)
        return inner


@dataclass
class JobSpec:
    """Everything the cluster needs to run one job.

    Attributes:
        job_id: fleet-unique name.
        pages: memory footprint in 4 KiB pages.
        cpu_cores: average CPU usage, for packing and Fig. 8 normalization.
        priority: higher = evicted later (best-effort jobs are 0).
        content_profile: compressibility of this job's data.
        pattern_factory: builds the job's access pattern.
        cold_fraction_target: the steady-state cold share this job was
            generated for (ground truth for calibration tests).
        duration_seconds: job lifetime; None = runs forever.
    """

    job_id: str
    pages: int
    cpu_cores: float
    priority: int
    content_profile: ContentProfile
    pattern_factory: PatternFactory
    cold_fraction_target: float = 0.0
    duration_seconds: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive(self.pages, "pages")
        check_positive(self.cpu_cores, "cpu_cores")
        check_fraction(self.cold_fraction_target, "cold_fraction_target")

    @property
    def bytes(self) -> int:
        """Memory footprint in bytes."""
        return self.pages * PAGE_SIZE


@dataclass
class FleetMixGenerator:
    """Draws heterogeneous job specs matching the paper's fleet statistics.

    Cold fractions are Beta-distributed with mean ~0.32 and enough spread to
    land the Fig. 3 deciles; sizes are lognormal between tens of MiB and
    several GiB; ~10 % of jobs get cache-like Zipf patterns and ~10 %
    phase-shifting patterns, the rest heterogeneous-Poisson with diurnal
    modulation.

    Attributes:
        seeds: RNG factory; the generator uses the ``"jobmix"`` stream.
        mean_cold_fraction: target fleet-mean cold share at T = 120 s.
        cold_concentration: Beta concentration (lower = more spread).
        min_pages / max_pages: clip range for job sizes.
        diurnal_fraction: share of jobs with diurnal load modulation.
        duration_range: optional (low, high) seconds; when set, jobs get
            log-uniform finite lifetimes (fleet churn), otherwise they run
            forever.
        name_prefix: job-id prefix (``"job"`` → ``job-00000`` …).  Give
            every generator feeding one fleet a distinct prefix so ids
            stay fleet-unique.
    """

    seeds: SeedSequenceFactory
    mean_cold_fraction: float = 0.32
    cold_concentration: float = 4.0
    min_pages: int = (64 * MIB) // PAGE_SIZE
    max_pages: int = (8 * GIB) // PAGE_SIZE
    diurnal_fraction: float = 0.6
    duration_range: Optional[tuple] = None
    name_prefix: str = "job"
    _counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        check_fraction(self.mean_cold_fraction, "mean_cold_fraction")
        check_positive(self.cold_concentration, "cold_concentration")
        check_positive(self.min_pages, "min_pages")
        check_fraction(self.diurnal_fraction, "diurnal_fraction")

    def generate(self, n_jobs: int) -> List[JobSpec]:
        """Draw ``n_jobs`` fresh specs."""
        return [self.next_job() for _ in range(n_jobs)]

    def next_job(self) -> JobSpec:
        """Draw one spec; job ids are sequential and unique per generator."""
        index = self._counter
        self._counter += 1
        rng = self.seeds.stream("jobmix", job=index)

        cold = self._draw_cold_fraction(rng)
        pages = self._draw_pages(rng)
        cpu = float(np.clip(rng.lognormal(math.log(2.0), 0.8), 0.1, 32.0))
        priority = int(rng.choice([0, 1, 2], p=[0.3, 0.5, 0.2]))
        kind = str(
            rng.choice(
                ["text", "mixed", "binary", "multimedia", "numeric"],
                p=[0.20, 0.45, 0.15, 0.08, 0.12],
            )
        )
        pattern_factory = self._make_pattern_factory(pages, cold, rng)
        duration = None
        if self.duration_range is not None:
            low, high = self.duration_range
            duration = int(
                math.exp(rng.uniform(math.log(low), math.log(high)))
            )
        return JobSpec(
            job_id=f"{self.name_prefix}-{index:05d}",
            pages=pages,
            cpu_cores=cpu,
            priority=priority,
            content_profile=CONTENT_PROFILES[kind],
            pattern_factory=pattern_factory,
            cold_fraction_target=cold,
            duration_seconds=duration,
        )

    def _draw_cold_fraction(self, rng: np.random.Generator) -> float:
        mean = self.mean_cold_fraction
        a = mean * self.cold_concentration
        b = (1.0 - mean) * self.cold_concentration
        return float(np.clip(rng.beta(a, b), 0.01, 0.9))

    def _draw_pages(self, rng: np.random.Generator) -> int:
        median = 512 * MIB / PAGE_SIZE
        pages = int(rng.lognormal(math.log(median), 1.0))
        return int(np.clip(pages, self.min_pages, self.max_pages))

    def _make_pattern_factory(
        self, pages: int, cold: float, rng: np.random.Generator
    ) -> PatternFactory:
        style = str(rng.choice(["poisson", "zipf", "phased"], p=[0.8, 0.1, 0.1]))
        diurnal = bool(rng.random() < self.diurnal_fraction)
        amplitude = float(rng.uniform(0.3, 0.7))
        phase = int(rng.integers(0, DAY))
        return GeneratedPatternFactory(
            style=style,
            pages=pages,
            cold=cold,
            diurnal=diurnal,
            amplitude=amplitude,
            phase_seconds=phase,
        )
