"""DET003 negative fixture: sorted iteration / order-free accumulation."""


def drain(shards):
    merged = []
    for key in sorted(shards):  # sorted: deterministic order
        merged.append(shards[key].result)
    return merged


def total(shards):
    count = 0
    for shard in shards.values():  # += is order-insensitive
        count += shard.pages
    return count
