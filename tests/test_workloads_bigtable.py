"""The Bigtable-like serving workload (Fig. 10 substrate)."""

import numpy as np
import pytest

from repro.common.rng import SeedSequenceFactory
from repro.common.units import DAY, MIB
from repro.kernel.machine import FarMemoryMode, Machine, MachineConfig
from repro.workloads.bigtable import BigtableApp, BigtableConfig


def make_app(mode=FarMemoryMode.OFF, seed=1, peak_qps=500.0, **config_kwargs):
    config = BigtableConfig(
        cache_pages=4000,
        hot_index_pages=200,
        peak_qps=peak_qps,
        **config_kwargs,
    )
    machine = Machine(
        "m0",
        MachineConfig(dram_bytes=256 * MIB, mode=mode),
        seeds=SeedSequenceFactory(seed),
    )
    rng = np.random.default_rng(seed)
    return BigtableApp("bt", machine, config, rng), machine


class TestSetup:
    def test_allocates_cache_and_index(self):
        app, machine = make_app()
        assert machine.memcgs["bt"].resident_pages == 4200

    def test_diurnal_qps(self):
        app, _ = make_app(diurnal_amplitude=0.6)
        assert app.qps_at(0) == pytest.approx(500.0)
        assert app.qps_at(DAY // 2) == pytest.approx(200.0)


class TestServing:
    def test_step_records_sample(self):
        app, _ = make_app()
        sample = app.step(0, 60)
        assert sample.qps > 0
        assert sample.user_ipc > 0
        assert app.samples == [sample]

    def test_skewed_cache_touches(self):
        app, machine = make_app(peak_qps=50.0, zipf_alpha=1.5)
        machine.memcgs["bt"].accessed[:] = False  # drop allocation touches
        for t in range(0, 600, 60):
            app.step(t, 60)
        memcg = machine.memcgs["bt"]
        # The Zipf head was touched, the deep tail wasn't.
        head = app._cache_pages[:10]
        tail = app._cache_pages[-1000:]
        assert memcg.accessed[head].all()
        assert not memcg.accessed[tail].all()

    def test_ipc_near_baseline_without_zswap(self):
        app, _ = make_app(ipc_noise_sigma=0.01)
        samples = [app.step(t, 60) for t in range(0, 1800, 60)]
        mean_ipc = np.mean([s.user_ipc for s in samples])
        assert mean_ipc == pytest.approx(1.2, rel=0.02)

    def test_promotions_zero_without_zswap(self):
        app, _ = make_app(mode=FarMemoryMode.OFF)
        for t in range(0, 1800, 60):
            app.step(t, 60)
        assert all(s.promotions == 0 for s in app.samples)

    def test_coverage_appears_with_zswap(self):
        app, machine = make_app(mode=FarMemoryMode.PROACTIVE, seed=2)
        memcg = machine.memcgs["bt"]
        for t in range(0, 3600, 60):
            app.step(t, 60)
            machine.tick(t)
            # Drive reclaim manually (no node agent in this unit test).
            memcg.cold_age_threshold = 120.0
            machine.run_reclaim()
        assert app.samples[-1].coverage > 0
        assert machine.far_pages > 0

    def test_ipc_degrades_with_stall(self):
        """Promotions consume CPU: IPC proxy must reflect heavy stalls."""
        app, machine = make_app(mode=FarMemoryMode.PROACTIVE, seed=3,
                                ipc_noise_sigma=0.001, cpu_cores=0.05)
        memcg = machine.memcgs["bt"]
        quiet = app.step(0, 60).user_ipc
        for t in range(60, 1800, 60):
            machine.tick(t)
            memcg.cold_age_threshold = 120.0
            machine.run_reclaim()
        # Touch the whole cache: mass promotion, huge stall for 0.05 cores.
        stall_sample = app.step(1800, 60)
        assert stall_sample.promotions > 0
        assert stall_sample.user_ipc < quiet
