"""Per-job SLI aggregation for Fig. 7."""

import pytest

from repro.agent.node_agent import SliSample
from repro.analysis.sli import per_job_promotion_rates, slo_violation_fraction


def sample(job, promotions, wss, time=0):
    rate = 100.0 * promotions / wss if wss else 0.0
    return SliSample(
        time=time,
        job_id=job,
        promotions=promotions,
        working_set_pages=wss,
        normalized_rate_pct_per_min=rate,
        threshold=120.0,
    )


class TestPerJobRates:
    def test_averages_over_minutes(self):
        samples = [sample("a", 10, 1000, 0), sample("a", 0, 1000, 60)]
        rates = per_job_promotion_rates(samples)
        # 5 promotions/min over a 1000-page working set = 0.5 %/min.
        assert rates == [pytest.approx(0.5)]

    def test_one_value_per_job(self):
        samples = [sample("a", 1, 100), sample("b", 2, 100),
                   sample("b", 2, 100)]
        assert len(per_job_promotion_rates(samples)) == 2

    def test_zero_wss_jobs_skipped(self):
        samples = [sample("empty", 0, 0)]
        assert per_job_promotion_rates(samples) == []

    def test_empty_input(self):
        assert per_job_promotion_rates([]) == []

    def test_live_fleet_p98_band(self, warm_fleet):
        """Per-job lifetime rates should be far tamer than per-minute
        spikes — the statistic the paper's Fig. 7 reports."""
        import numpy as np

        rates = per_job_promotion_rates(warm_fleet.sli_history)
        assert rates
        assert float(np.percentile(rates, 98)) < 5.0


class TestViolationFraction:
    def test_counts_violations(self):
        samples = [
            sample("a", 10, 1000),   # 1.0 %/min: violation
            sample("a", 1, 1000),    # 0.1 %/min: ok
            sample("a", 0, 1000),
        ]
        assert slo_violation_fraction(samples, 0.2) == pytest.approx(1 / 3)

    def test_empty(self):
        assert slo_violation_fraction([]) == 0.0
