"""A job instance running on a machine.

Binds a :class:`~repro.workloads.job_generator.JobSpec` to a machine:
allocates the job's pages, instantiates its access pattern, and translates
pattern-space page indices into memcg slot indices on every tick.
"""

from __future__ import annotations

from repro.common.rng import SeedSequenceFactory
from repro.kernel.machine import Machine
from repro.workloads.job_generator import JobSpec

__all__ = ["RunningJob"]


class RunningJob:
    """One placed, running job.

    Args:
        spec: the job description.
        machine: host machine (the memcg must not exist yet).
        seeds: RNG factory; the job uses streams keyed by its id.
        start_time: placement time in seconds.
    """

    def __init__(
        self,
        spec: JobSpec,
        machine: Machine,
        seeds: SeedSequenceFactory,
        start_time: int = 0,
    ):
        self.spec = spec
        self.machine = machine
        self.start_time = int(start_time)
        job_index = abs(hash(spec.job_id)) & 0x7FFFFFFF
        self._pattern_rng = seeds.stream("pattern", job=job_index)
        self._drive_rng = seeds.stream("drive", job=job_index)
        self.pattern = spec.pattern_factory(self._pattern_rng)

        machine.add_job(
            spec.job_id,
            capacity_pages=spec.pages,
            content_profile=spec.content_profile,
        )
        self.page_map = machine.allocate(spec.job_id, spec.pages)
        self.promotions_total = 0

    @property
    def job_id(self) -> str:
        """The job's fleet-unique name."""
        return self.spec.job_id

    def expired(self, now: int) -> bool:
        """True once the job's lifetime has elapsed."""
        duration = self.spec.duration_seconds
        return duration is not None and now - self.start_time >= duration

    def step(self, now: int, interval_seconds: int) -> int:
        """Run one tick of the access pattern; returns promotions incurred."""
        reads, writes = self.pattern.step(now, interval_seconds, self._drive_rng)
        promotions = 0
        if reads.size:
            promotions += self.machine.touch(
                self.job_id, self.page_map[reads], write=False
            )
        if writes.size:
            promotions += self.machine.touch(
                self.job_id, self.page_map[writes], write=True
            )
        self.promotions_total += promotions
        return promotions

    def stop(self) -> None:
        """Tear the job down on its machine."""
        self.machine.remove_job(self.job_id)
