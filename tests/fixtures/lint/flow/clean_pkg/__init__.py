"""Clean flow fixture: same shape as seeded_pkg, zero findings.

Every pattern here is the *sanctioned* variant of a seeded_pkg hazard:
seeded RNG instead of entropy-seeded, picklable worker state, contract
table that matches every assignment.  ``run_flow`` must report nothing.
"""
