"""Fault injector: applies a :class:`FaultPlan` to a live cluster.

The injector is attached to a cluster (``cluster.attach_fault_injector``)
and fires from the top of ``Cluster.tick`` — before jobs, daemons, agents,
and exporters run — so a fault lands at the same simulated instant no
matter which process executes the tick.  Everything the injector does is
driven by the plan plus :class:`~repro.common.rng.SeedSequenceFactory`
streams, which is what keeps chaos runs bit-for-bit identical between the
serial and parallel engines.

Episodic faults are *level-triggered*: while an episode is open the
injector re-asserts the degraded state on every tick (re-wrapping a
telemetry sink, re-pinning the zswap payload cutoff).  That makes the
layer robust against runtime rewiring — ``Cluster.rebind_runtime`` resets
``exporter.sink`` after a cross-process move, and a level-triggered
outage simply wraps it again on the next tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.common.errors import ReproError
from repro.common.events import EventKind
from repro.common.rng import SeedSequenceFactory
from repro.faults.plan import (
    ALL_MACHINES,
    EPISODIC_KINDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
)
from repro.obs import MetricName

__all__ = ["BrokenSink", "FaultInjector", "SinkUnavailableError"]


class SinkUnavailableError(ReproError):
    """The telemetry sink is down (injected outage)."""


class BrokenSink:
    """A trace sink stand-in that refuses every ``add``.

    Module-level (not a closure) so a cluster mid-outage still pickles
    across the parallel engine's fork boundary.  The wrapped sink is kept
    on ``inner`` so the injector can unwrap it when the episode ends.
    """

    def __init__(self, inner: Any):
        self.inner = inner

    def add(self, entry: Any) -> None:
        raise SinkUnavailableError("telemetry sink offline (injected fault)")


@dataclass
class _ActiveFault:
    """One open episode: the event, its window, and undo state."""

    seq: int
    event: FaultEvent
    end_time: float
    machine_ids: Tuple[str, ...]
    #: Original ``zswap.max_payload_bytes`` per machine (storm/failure).
    saved_cutoffs: Dict[str, int] = field(default_factory=dict)


class FaultInjector:
    """Executes a :class:`FaultPlan` against one cluster.

    Args:
        plan: the schedule to execute.
        seeds: seed factory for the injector's own draws (pressure-spike
            page choices, corruption victim choices).  Fork a per-cluster
            child so sibling clusters stay independent.

    The injector holds no metric handles or subscriber closures of its
    own — counters and events are resolved through the cluster at fire
    time — so it pickles cleanly with the cluster it is attached to.
    """

    def __init__(self, plan: FaultPlan, seeds: SeedSequenceFactory):
        self.plan = plan
        self._seeds = seeds
        self._next = 0
        self._active: List[_ActiveFault] = []
        self._crashed: List[str] = []
        self.faults_injected = 0
        self.faults_cleared = 0

    def bind(self, cluster: Any) -> None:
        """Hook for :meth:`Cluster.attach_fault_injector` (stateless)."""
        del cluster

    @property
    def active_faults(self) -> Tuple[FaultEvent, ...]:
        """Events whose episodes are currently open."""
        return tuple(af.event for af in self._active)

    def done(self) -> bool:
        """True once every event fired and every episode closed."""
        return self._next >= len(self.plan.events) and not self._active

    # ------------------------------------------------------------------
    # Tick hook
    # ------------------------------------------------------------------

    def on_tick(self, cluster: Any, now: int) -> None:
        """Start due events, close elapsed episodes, re-assert open ones."""
        events = self.plan.events
        while self._next < len(events) and events[self._next].time <= now:
            self._start(cluster, now, self._next, events[self._next])
            self._next += 1
        still_open: List[_ActiveFault] = []
        for af in self._active:
            if af.end_time <= now:
                self._end(cluster, now, af)
            else:
                still_open.append(af)
        self._active = still_open
        for af in self._active:
            self._enforce(cluster, af)

    # ------------------------------------------------------------------
    # Start / enforce / end
    # ------------------------------------------------------------------

    def _target_machines(self, cluster: Any, event: FaultEvent) -> List[Any]:
        machines = cluster.machines
        if event.target == ALL_MACHINES:
            return list(machines)
        return [machines[event.target % len(machines)]]

    def _count_injected(self, cluster: Any, kind: str) -> None:
        cluster.registry.counter(
            MetricName.FAULTS_INJECTED_TOTAL,
            "Faults injected into the cluster, by fault kind.", ("kind",)
        ).labels(kind=kind).inc()

    def _start(self, cluster: Any, now: int, seq: int,
               event: FaultEvent) -> None:
        targets = self._target_machines(cluster, event)
        machine_ids = tuple(m.machine_id for m in targets)
        af = _ActiveFault(
            seq=seq, event=event, end_time=event.end_time,
            machine_ids=machine_ids,
        )

        if event.kind == FaultKind.MACHINE_CRASH:
            for machine in targets:
                if machine.machine_id in self._crashed:
                    continue
                cluster.fail_machine(machine.machine_id)
                self._crashed.append(machine.machine_id)
        elif event.kind in (FaultKind.INCOMPRESSIBLE_STORM,
                            FaultKind.COMPRESSION_FAILURE):
            for machine in targets:
                af.saved_cutoffs[machine.machine_id] = int(
                    machine.zswap.max_payload_bytes
                )
        elif event.kind == FaultKind.MEMORY_PRESSURE:
            self._spike_pressure(targets, seq, event.magnitude)
        elif event.kind == FaultKind.HISTOGRAM_CORRUPT:
            self._corrupt_histograms(targets, seq, event.magnitude)

        self.faults_injected += 1
        self._count_injected(cluster, event.kind)
        cluster.events.record(
            now, EventKind.FAULT_INJECTED,
            fault=event.kind, scenario=self.plan.name,
            machines=list(machine_ids), magnitude=event.magnitude,
            duration=event.duration,
        )
        if event.kind in EPISODIC_KINDS:
            self._active.append(af)
            self._enforce(cluster, af)

    def _enforce(self, cluster: Any, af: _ActiveFault) -> None:
        """Re-assert an open episode's degraded state (idempotent)."""
        event = af.event
        if event.kind == FaultKind.SINK_OUTAGE:
            # The same outage that blocks trace uploads also blocks the
            # agents' SLI uploads: the cluster drops the affected
            # machines' samples at drain time, so monitors see a
            # telemetry gap (and deployment's coverage gate fails
            # closed) instead of vacuously passing on silence.
            cluster.sli_blocked_machines.update(af.machine_ids)
            for machine_id in af.machine_ids:
                exporter = cluster.exporters.get(machine_id)
                if exporter is not None and not isinstance(
                    exporter.sink, BrokenSink
                ):
                    exporter.sink = BrokenSink(exporter.sink)
        elif event.kind in (FaultKind.INCOMPRESSIBLE_STORM,
                            FaultKind.COMPRESSION_FAILURE):
            for machine in cluster.machines:
                original = af.saved_cutoffs.get(machine.machine_id)
                if original is None:
                    continue
                machine.zswap.max_payload_bytes = int(
                    original * event.magnitude
                )

    def _end(self, cluster: Any, now: int, af: _ActiveFault) -> None:
        event = af.event
        if event.kind == FaultKind.MACHINE_CRASH:
            for machine_id in af.machine_ids:
                if machine_id in self._crashed:
                    cluster.repair_machine(machine_id)
                    self._crashed.remove(machine_id)
        elif event.kind == FaultKind.SINK_OUTAGE:
            cluster.sli_blocked_machines.difference_update(af.machine_ids)
            for machine_id in af.machine_ids:
                exporter = cluster.exporters.get(machine_id)
                if exporter is not None and isinstance(
                    exporter.sink, BrokenSink
                ):
                    exporter.sink = exporter.sink.inner
        elif event.kind in (FaultKind.INCOMPRESSIBLE_STORM,
                            FaultKind.COMPRESSION_FAILURE):
            for machine in cluster.machines:
                original = af.saved_cutoffs.get(machine.machine_id)
                if original is not None:
                    machine.zswap.max_payload_bytes = original
        self.faults_cleared += 1
        cluster.events.record(
            now, EventKind.FAULT_CLEARED,
            fault=event.kind, scenario=self.plan.name,
            machines=list(af.machine_ids),
        )

    # ------------------------------------------------------------------
    # Instantaneous fault bodies
    # ------------------------------------------------------------------

    def _spike_pressure(self, targets: List[Any], seq: int,
                        magnitude: float) -> None:
        """Touch a seeded fraction of every target job's resident pages."""
        rng = self._seeds.stream("faults.pressure", seq=seq)
        for machine in targets:
            for job_id in sorted(machine.memcgs):
                memcg = machine.memcgs[job_id]
                resident = np.flatnonzero(memcg.resident)
                count = int(resident.size * magnitude)
                if count == 0:
                    continue
                touched = rng.choice(resident, size=count, replace=False)
                memcg.touch(touched)

    def _corrupt_histograms(self, targets: List[Any], seq: int,
                            magnitude: float) -> None:
        """Flag a seeded fraction of target jobs' histograms corrupt."""
        rng = self._seeds.stream("faults.corrupt", seq=seq)
        for machine in targets:
            for job_id in sorted(machine.memcgs):
                if rng.random() < magnitude:
                    machine.memcgs[job_id].histograms_corrupt = True
