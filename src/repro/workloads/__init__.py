"""Synthetic workloads: access patterns, fleet job mixes, applications."""

from repro.workloads.access_patterns import (
    AccessPattern,
    DiurnalModulation,
    HeterogeneousPoissonPattern,
    PhasedPattern,
    ScanPattern,
    ZipfianPattern,
    make_rates_for_cold_fraction,
)
from repro.workloads.bigtable import BigtableApp, BigtableConfig, BigtableMetricSample
from repro.workloads.content import CONTENT_PROFILES, profile_for
from repro.workloads.job_generator import FleetMixGenerator, JobSpec

__all__ = [
    "AccessPattern",
    "BigtableApp",
    "BigtableConfig",
    "BigtableMetricSample",
    "CONTENT_PROFILES",
    "DiurnalModulation",
    "FleetMixGenerator",
    "HeterogeneousPoissonPattern",
    "JobSpec",
    "PhasedPattern",
    "ScanPattern",
    "ZipfianPattern",
    "make_rates_for_cold_fraction",
    "profile_for",
]
