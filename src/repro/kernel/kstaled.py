"""kstaled: the page-age scanner daemon (paper §5.1).

kstaled walks page tables every ``scan_period`` (120 s), reads and clears
PTE accessed bits, maintains the 8-bit per-page ages, and updates the two
per-job histograms the control plane consumes.  The heavy lifting is inside
:meth:`repro.kernel.memcg.MemCg.scan_update`; this daemon sequences scans
across memcgs, tracks its own CPU cost (the paper budgets <11 % of one
logical core), and exposes scan counters for tests and monitoring.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.simtime import PeriodicSchedule
from repro.common.units import KSTALED_SCAN_PERIOD
from repro.common.validation import check_positive
from repro.kernel.memcg import MemCg

__all__ = ["Kstaled"]

#: Modelled cost of examining one page's PTEs during a scan.  ~20 ns/page
#: keeps a 256 GiB machine (64 M pages) around 10 % of one core at a 120 s
#: period, matching the paper's measured budget.
SCAN_SECONDS_PER_PAGE = 20e-9


class Kstaled:
    """Machine-wide scanner over all memcgs.

    Args:
        scan_period: seconds between scans of each memcg (120 s).
    """

    def __init__(self, scan_period: int = KSTALED_SCAN_PERIOD):
        check_positive(scan_period, "scan_period")
        self.scan_period = int(scan_period)
        self._schedule = PeriodicSchedule(self.scan_period)
        self.scans_completed = 0
        self.pages_scanned = 0
        self.cpu_seconds = 0.0

    def maybe_scan(self, now: int, memcgs: Iterable[MemCg]) -> bool:
        """Run a scan if the period boundary has been crossed.

        Returns True when a scan ran.
        """
        if not self._schedule.due(now):
            return False
        self.scan(memcgs)
        return True

    def scan(self, memcgs: Iterable[MemCg]) -> None:
        """Unconditionally scan every memcg once."""
        for memcg in memcgs:
            memcg.scan_update()
            self.pages_scanned += memcg.resident_pages
            self.cpu_seconds += memcg.resident_pages * SCAN_SECONDS_PER_PAGE
        self.scans_completed += 1

    def utilization_of_core(self, elapsed_seconds: float) -> float:
        """Fraction of one logical core consumed so far."""
        if elapsed_seconds <= 0:
            return 0.0
        return self.cpu_seconds / elapsed_seconds
