"""Per-job age histograms — the statistics the kernel exports (paper §4.3-4.4).

The control plane never sees raw page accesses; it sees two compact per-job
histograms that ``kstaled`` maintains at scan granularity:

* the **cold-age histogram** — for each predefined cold-age threshold ``T``,
  how many resident pages have not been accessed for at least ``T`` seconds
  (stored here as per-bin counts; the "colder than T" view is a suffix sum);
* the **promotion histogram** — for each threshold ``T``, how many page
  accesses hit a page whose age was at least ``T`` at the moment of access
  (i.e. how many promotions *would have happened* had ``T`` been the
  threshold).

Both are defined over a shared, strictly increasing grid of candidate
thresholds (:class:`AgeBins`).  Exposing *all* candidate thresholds at once
is what makes the paper's offline what-if analysis (§5.3) possible: the fast
far memory model can replay the control algorithm under any threshold
without re-running the fleet.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.common.units import (
    KSTALED_SCAN_PERIOD,
    MAX_PAGE_AGE_SECONDS,
    MIN_COLD_AGE_THRESHOLD,
)
from repro.common.validation import check_positive, check_sorted_unique, require

__all__ = ["AgeBins", "AgeHistogram", "default_age_bins"]


@dataclass(frozen=True)
class AgeBins:
    """A shared grid of candidate cold-age thresholds, in seconds.

    The grid must be strictly increasing and start at the minimum cold-age
    threshold (120 s in the paper): pages younger than ``thresholds[0]`` are
    by definition part of the working set, never cold.

    Attributes:
        thresholds: candidate thresholds in seconds, ascending.
    """

    thresholds: Tuple[int, ...]

    def __post_init__(self) -> None:
        check_sorted_unique(self.thresholds, "thresholds")
        require(
            self.thresholds[0] >= KSTALED_SCAN_PERIOD,
            "the smallest threshold cannot be below the kstaled scan period "
            f"({KSTALED_SCAN_PERIOD} s), got {self.thresholds[0]} s",
        )
        # Cached array form of the grid: ``np.searchsorted`` against the
        # raw tuple would re-convert it on every call, and ``bin_of_age``
        # sits on the per-promotion fault path.
        object.__setattr__(
            self, "_thresholds_array",
            np.asarray(self.thresholds, dtype=np.int64),
        )

    def __len__(self) -> int:
        return len(self.thresholds)

    @property
    def min_threshold(self) -> int:
        """The most aggressive candidate threshold (the working-set window)."""
        return self.thresholds[0]

    @property
    def max_threshold(self) -> int:
        """The least aggressive candidate threshold."""
        return self.thresholds[-1]

    def bin_index(self, threshold_seconds: float) -> int:
        """Index of the bin whose threshold equals ``threshold_seconds``.

        Raises:
            ValueError: if the threshold is not one of the candidates.
        """
        try:
            return self.thresholds.index(int(threshold_seconds))
        except ValueError:
            raise ValueError(
                f"{threshold_seconds} s is not a candidate threshold; "
                f"candidates are {list(self.thresholds)}"
            ) from None

    def bin_of_age(self, age_seconds: np.ndarray) -> np.ndarray:
        """Map page ages to bin indices.

        Returns ``-1`` for ages younger than the first threshold (not cold
        under any candidate), otherwise the index of the largest threshold
        that the age meets or exceeds.
        """
        ages = np.asarray(age_seconds)
        return np.searchsorted(self._thresholds_array, ages, side="right") - 1

    def scan_periods(self, scan_period: int = KSTALED_SCAN_PERIOD) -> np.ndarray:
        """Each threshold expressed in whole kstaled scans (ceil)."""
        return np.ceil(np.asarray(self.thresholds) / scan_period).astype(np.int64)


def default_age_bins(
    min_threshold: int = MIN_COLD_AGE_THRESHOLD,
    max_threshold: int = MAX_PAGE_AGE_SECONDS,
    growth: float = 2.0,
) -> AgeBins:
    """The paper-shaped exponential threshold grid.

    Starts at the 120 s minimum threshold and doubles up to the 8-bit age
    ceiling (8.5 h), giving ~9 candidate thresholds — a realistic size for a
    kernel-exported histogram.
    """
    check_positive(min_threshold, "min_threshold")
    require(growth > 1.0, f"growth must exceed 1.0, got {growth}")
    require(
        max_threshold >= min_threshold,
        f"max_threshold {max_threshold} < min_threshold {min_threshold}",
    )
    thresholds: List[int] = []
    current = float(min_threshold)
    while current < max_threshold:
        thresholds.append(int(round(current)))
        current *= growth
    thresholds.append(int(max_threshold))
    return AgeBins(tuple(thresholds))


class AgeHistogram:
    """Counts bucketed by the candidate-threshold grid.

    One instance serves as either a cold-age histogram (counts are pages) or
    a promotion histogram (counts are promotion events); the math — suffix
    sums over the threshold grid — is identical.

    ``counts[i]`` holds the population whose age lies in
    ``[thresholds[i], thresholds[i+1])`` (the last bin is unbounded above).
    Ages below ``thresholds[0]`` are tracked separately in ``young_count``
    so that totals are preserved.
    """

    def __init__(self, bins: AgeBins):
        self.bins = bins
        self.counts = np.zeros(len(bins), dtype=np.int64)
        self.young_count = 0

    def __repr__(self) -> str:
        return (
            f"AgeHistogram(young={self.young_count}, "
            f"counts={self.counts.tolist()})"
        )

    @property
    def total(self) -> int:
        """All recorded observations, including the young bucket."""
        return int(self.young_count + self.counts.sum())

    def clear(self) -> None:
        """Reset all counts to zero."""
        self.counts[:] = 0
        self.young_count = 0

    def add_ages(self, age_seconds: np.ndarray, weight: int = 1) -> None:
        """Record a batch of observations given their ages in seconds."""
        ages = np.asarray(age_seconds)
        if ages.size == 0:
            return
        idx = self.bins.bin_of_age(ages)
        self.young_count += int(np.count_nonzero(idx < 0)) * weight
        valid = idx[idx >= 0]
        if valid.size:
            self.counts += np.bincount(valid, minlength=len(self.bins)) * weight

    def add_binned(self, bin_counts: np.ndarray, young: int = 0) -> None:
        """Merge pre-binned counts (e.g. from a vectorized kernel scan)."""
        bin_counts = np.asarray(bin_counts, dtype=np.int64)
        require(
            bin_counts.shape == self.counts.shape,
            f"bin_counts has shape {bin_counts.shape}, "
            f"expected {self.counts.shape}",
        )
        self.counts += bin_counts
        self.young_count += int(young)

    def colder_than(self, threshold_seconds: float) -> int:
        """Total count with age >= ``threshold_seconds`` (a suffix sum)."""
        # bisect over the thresholds tuple: ``np.searchsorted`` would
        # convert the tuple to an array on every call, and this runs once
        # per job per agent round.
        idx = bisect_left(self.bins.thresholds, threshold_seconds)
        return int(self.counts[idx:].sum())

    def suffix_sums(self) -> np.ndarray:
        """``colder_than(T)`` for every candidate threshold, vectorized."""
        return np.cumsum(self.counts[::-1])[::-1].copy()

    def copy(self) -> "AgeHistogram":
        """Deep copy (shared immutable bins)."""
        clone = AgeHistogram(self.bins)
        clone.counts = self.counts.copy()
        clone.young_count = self.young_count
        return clone

    def diff(self, earlier: "AgeHistogram") -> "AgeHistogram":
        """Counts accumulated since ``earlier`` (for cumulative histograms)."""
        require(
            earlier.bins.thresholds == self.bins.thresholds,
            "cannot diff histograms over different threshold grids",
        )
        delta = AgeHistogram(self.bins)
        delta.counts = self.counts - earlier.counts
        delta.young_count = self.young_count - earlier.young_count
        return delta

    @classmethod
    def merge(cls, histograms: Iterable["AgeHistogram"]) -> "AgeHistogram":
        """Sum many histograms over the same grid (fleet-level aggregation)."""
        histograms = list(histograms)
        require(len(histograms) > 0, "cannot merge zero histograms")
        merged = histograms[0].copy()
        for other in histograms[1:]:
            require(
                other.bins.thresholds == merged.bins.thresholds,
                "cannot merge histograms over different threshold grids",
            )
            merged.counts += other.counts
            merged.young_count += other.young_count
        return merged
