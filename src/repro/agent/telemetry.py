"""Telemetry export: node agent -> external trace database (paper §5.2-5.3).

Every 5 minutes the agent exports, per job, the trace entry the autotuner's
fast far memory model consumes: working set size, the promotion histogram
accumulated over the period, and the current cold-age snapshot.  The sink
is anything with an ``add(entry)`` method — in this repo,
:class:`repro.cluster.trace_db.TraceDatabase`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

import numpy as np

from repro.common.events import EventKind, EventLog
from repro.common.simtime import PeriodicSchedule
from repro.core.histograms import AgeHistogram
from repro.core.slo import PromotionRateSlo, working_set_pages
from repro.kernel.machine import Machine
from repro.model.trace import TRACE_PERIOD_SECONDS, TelemetryBlock, TraceEntry
from repro.obs import (
    MetricName,
    MetricRegistry,
    Tracer,
    get_registry,
    get_tracer,
)

__all__ = ["TraceSink", "TelemetryExporter"]

#: Most spilled entries retained while the sink is down; beyond this the
#: oldest spilled entries are dropped (and counted) so a never-healing
#: sink cannot grow memory without bound.
RETRY_BUFFER_CAP = 4096

#: First retry happens one export period after the failure; each failed
#: retry doubles the wait up to :data:`MAX_BACKOFF_SECONDS`.
INITIAL_BACKOFF_SECONDS = TRACE_PERIOD_SECONDS
MAX_BACKOFF_SECONDS = 3600


def _default_cpu_lookup(_job_id: str) -> float:
    """Fallback CPU lookup: one core per job (module-level so exporters
    stay picklable when no lookup is injected)."""
    return 1.0


class TraceSink(Protocol):
    """Anything that accepts exported trace entries."""

    def add(self, entry: TraceEntry) -> None:
        """Store one trace entry."""
        ...


class TelemetryExporter:
    """Per-machine 5-minute trace exporter.

    Args:
        machine: the machine whose jobs are exported.
        sink: destination database.
        cpu_lookup: maps job id to average CPU cores (for Fig. 8
            normalization); defaults to 1 core per job.
        period: export period in seconds (300 in the paper).
        slo: defines the working-set window.
        events: optional event log; the exporter records a
            ``telemetry.histogram_reset`` event whenever a job's period
            histogram had to restart from the cumulative counts because
            the bin thresholds changed mid-run.
        registry: metrics registry (defaults to the process-global one).
        tracer: span tracer (defaults to the process-global one).
    """

    #: When True (the default) and both ends are columnar — the machine
    #: runs a :class:`~repro.kernel.columnar.MachinePagePool` and the sink
    #: implements ``add_block`` — each export window ships as one
    #: :class:`~repro.model.trace.TelemetryBlock` gathered straight from
    #: pool columns, with no per-job ``TraceEntry`` objects.  Tests flip
    #: this off to force the entry path as the bit-equivalence oracle.
    prefer_blocks: bool = True

    def __init__(
        self,
        machine: Machine,
        sink: TraceSink,
        cpu_lookup: Optional[Callable[[str], float]] = None,
        period: int = TRACE_PERIOD_SECONDS,
        slo: Optional[PromotionRateSlo] = None,
        events: Optional[EventLog] = None,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.machine = machine
        self.sink = sink
        self.cpu_lookup = (
            cpu_lookup if cpu_lookup is not None else _default_cpu_lookup
        )
        self.period = int(period)
        self.slo = slo if slo is not None else PromotionRateSlo()
        self.events = events
        self._schedule = PeriodicSchedule(self.period)
        self._last_promotion: Dict[str, AgeHistogram] = {}
        self.entries_exported = 0
        # Graceful degradation under a failing sink: entries that could
        # not be delivered wait here (FIFO, bounded) until a retry lands.
        self._spill: List[TraceEntry] = []
        self._backoff = INITIAL_BACKOFF_SECONDS
        self._retry_at: Optional[int] = None
        self.entries_dropped = 0

        registry = registry if registry is not None else get_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        self._bind_metrics(registry)

    def _bind_metrics(self, registry: MetricRegistry) -> None:
        machine_id = self.machine.machine_id
        self._m_exports = registry.counter(
            MetricName.TELEMETRY_EXPORTS_TOTAL,
            "Completed 5-minute telemetry export rounds.", ("machine",)
        ).labels(machine=machine_id)
        self._m_entries = registry.counter(
            MetricName.TELEMETRY_ENTRIES_TOTAL,
            "Trace entries shipped to the trace database.", ("machine",)
        ).labels(machine=machine_id)
        self._m_resets = registry.counter(
            MetricName.TELEMETRY_HISTOGRAM_RESETS_TOTAL,
            "Period histograms restarted after a bin-threshold change.",
            ("machine",)
        ).labels(machine=machine_id)
        self._m_outages = registry.counter(
            MetricName.TELEMETRY_SINK_OUTAGES_TOTAL,
            "Sink-outage episodes (first failed add after a healthy spell).",
            ("machine",)
        ).labels(machine=machine_id)
        self._m_spilled = registry.counter(
            MetricName.TELEMETRY_SPILLED_ENTRIES_TOTAL,
            "Entries diverted to the retry buffer while the sink was down.",
            ("machine",)
        ).labels(machine=machine_id)
        self._m_replayed = registry.counter(
            MetricName.TELEMETRY_REPLAYED_ENTRIES_TOTAL,
            "Spilled entries delivered after the sink recovered.",
            ("machine",)
        ).labels(machine=machine_id)
        self._m_dropped = registry.counter(
            MetricName.TELEMETRY_DROPPED_ENTRIES_TOTAL,
            "Spilled entries evicted because the retry buffer was full.",
            ("machine",)
        ).labels(machine=machine_id)
        self._g_degraded = registry.gauge(
            MetricName.DEGRADED_MODE,
            "1 while a component is running degraded (per component).",
            ("component", "machine")
        ).labels(component="telemetry", machine=machine_id)

    def rebind_observability(self, registry: MetricRegistry,
                             tracer: Tracer) -> None:
        """Re-point metric handles and tracer after a cross-process move."""
        self._tracer = tracer
        self._bind_metrics(registry)

    def maybe_export(self, now: int) -> bool:
        """Export if the period boundary passed; returns True when it did."""
        if not self._schedule.due(now):
            return False
        self.export(now)
        return True

    @property
    def sink_degraded(self) -> bool:
        """True while undelivered entries sit in the retry buffer."""
        return bool(self._spill)

    def _spill_entry(self, now: int, entry: TraceEntry) -> None:
        """Queue an entry for later replay, evicting the oldest when full."""
        self._spill.append(entry)
        self._m_spilled.inc()
        overflow = len(self._spill) - RETRY_BUFFER_CAP
        if overflow > 0:
            del self._spill[:overflow]
            self.entries_dropped += overflow
            self._m_dropped.inc(overflow)
            if self.events is not None:
                self.events.record(
                    now, EventKind.TELEMETRY_ENTRIES_DROPPED,
                    machine=self.machine.machine_id, count=overflow,
                )

    def _begin_outage(self, now: int) -> None:
        """First failed ``sink.add`` after a healthy spell."""
        self._backoff = INITIAL_BACKOFF_SECONDS
        self._retry_at = now + self._backoff
        self._m_outages.inc()
        self._g_degraded.set(1)
        if self.events is not None:
            self.events.record(
                now, EventKind.TELEMETRY_SINK_OUTAGE,
                machine=self.machine.machine_id,
            )

    def _retry_spill(self, now: int) -> None:
        """Replay the retry buffer if the backoff window has elapsed.

        Entries are replayed oldest-first so per-job trace order (and the
        trace database's monotonic-append contract) is preserved.  A
        failure mid-replay keeps the remainder queued and doubles the
        backoff; draining the buffer ends the outage episode.
        """
        if not self._spill or (self._retry_at is not None and now < self._retry_at):
            return
        replayed = 0
        while self._spill:
            try:
                self.sink.add(self._spill[0])
            except Exception:
                self._backoff = min(self._backoff * 2, MAX_BACKOFF_SECONDS)
                self._retry_at = now + self._backoff
                break
            self._spill.pop(0)
            replayed += 1
            self.entries_exported += 1
            self._m_entries.inc()
        if replayed:
            self._m_replayed.inc(replayed)
        if not self._spill:
            self._backoff = INITIAL_BACKOFF_SECONDS
            self._retry_at = None
            self._g_degraded.set(0)
            if self.events is not None:
                self.events.record(
                    now, EventKind.TELEMETRY_SINK_RECOVERED,
                    machine=self.machine.machine_id, replayed=replayed,
                )

    def _deliver(self, now: int, entry: TraceEntry) -> None:
        """Ship one entry, spilling it (in order) when the sink is down."""
        if self._spill:
            # Never overtake queued entries: per-job order must hold.
            self._spill_entry(now, entry)
            return
        try:
            self.sink.add(entry)
        except Exception:
            self._begin_outage(now)
            self._spill_entry(now, entry)
            return
        self.entries_exported += 1
        self._m_entries.inc()

    def _deliver_batch(self, now: int, entries: List[TraceEntry]) -> None:
        """Ship one export window in a single ``sink.add_batch`` call.

        Failure handling matches the per-entry path except that the
        batch is all-or-nothing: ``add_batch`` appends no row on error,
        so the whole window spills and is replayed in order later.
        """
        if not entries:
            return
        if self._spill:
            # Never overtake queued entries: per-job order must hold.
            for entry in entries:
                self._spill_entry(now, entry)
            return
        try:
            self.sink.add_batch(entries)
        except Exception:
            self._begin_outage(now)
            for entry in entries:
                self._spill_entry(now, entry)
            return
        self.entries_exported += len(entries)
        self._m_entries.inc(len(entries))

    def _deliver_block(self, now: int, block: TelemetryBlock) -> None:
        """Ship one export window as a single zero-copy block.

        ``add_block`` is all-or-nothing (the store validates the whole
        block before touching any buffer), so on failure the window
        degrades to per-entry objects and spills to the retry buffer in
        original row order — from there recovery is identical to the
        entry path, and no delivered row is ever re-counted.
        """
        n = block.n_rows
        if n == 0:
            return
        if self._spill:
            # Never overtake queued entries: per-job order must hold.
            for entry in block.entries():
                self._spill_entry(now, entry)
            return
        try:
            self.sink.add_block(block)
        except Exception:
            self._begin_outage(now)
            for entry in block.entries():
                self._spill_entry(now, entry)
            return
        self.entries_exported += n
        self._m_entries.inc(n)

    def _export_block(self, now: int, entry_time: int) -> None:
        """Columnar export window: one pool gather, one block delivery.

        Bit-equivalent to the per-entry loop in :meth:`export`: the pool
        gather reads exactly the columns the scalar path reads per memcg,
        and the period promotion histogram is the same cumulative-minus-
        previous subtraction (restarting from the cumulative counts on a
        bin-threshold change, with the same reset event and counter).
        Only the container differs — dense arrays instead of per-job
        ``TraceEntry`` objects.
        """
        machine = self.machine
        items = list(machine.memcgs.items())
        n = len(items)
        if n == 0:
            return
        rows = np.fromiter(
            (memcg._pool_row for _job_id, memcg in items), np.int64, n
        )
        cols = machine.pool.export_columns(
            rows, self.slo.min_cold_age_seconds
        )
        promo_now = cols["promotion_counts"]
        promo_young_now = cols["promotion_young"]
        prev_counts = np.zeros_like(promo_now)
        prev_young = np.zeros(n, dtype=np.int64)
        for i, (job_id, memcg) in enumerate(items):
            last = self._last_promotion.get(job_id)
            if last is None or last.bins.thresholds != memcg.bins.thresholds:
                if last is not None:
                    self._m_resets.inc()
                    if self.events is not None:
                        self.events.record(
                            now, EventKind.TELEMETRY_HISTOGRAM_RESET,
                            job=job_id,
                            machine=machine.machine_id,
                        )
            else:
                prev_counts[i] = last.counts
                prev_young[i] = last.young_count
            # The gather already detached these rows from pool storage,
            # so the snapshot can wrap them without another copy.
            snapshot = AgeHistogram(memcg.bins)
            snapshot.counts = promo_now[i]
            snapshot.young_count = int(promo_young_now[i])
            self._last_promotion[job_id] = snapshot
        block = TelemetryBlock(
            bins=machine.pool.bins,
            job_table=[job_id for job_id, _memcg in items],
            machine_table=[machine.machine_id],
            job=np.arange(n, dtype=np.int64),
            machine=np.zeros(n, dtype=np.int64),
            time=np.full(n, entry_time, dtype=np.int64),
            working_set_pages=cols["working_set_pages"],
            resident_pages=cols["resident_pages"],
            cpu_cores=np.fromiter(
                (self.cpu_lookup(job_id) for job_id, _memcg in items),
                np.float64, n,
            ),
            promotion_counts=promo_now - prev_counts,
            promotion_young=promo_young_now - prev_young,
            cold_counts=cols["cold_counts"],
            cold_young=cols["cold_young"],
        )
        self._deliver_block(now, block)

    def export(self, now: int) -> None:
        """Emit one trace entry per job on the machine.

        When a job's bin thresholds changed since the previous export, the
        previous cumulative snapshot is incomparable and the period
        histogram restarts from the cumulative counts; that reset is
        surfaced as a ``telemetry.histogram_reset`` event (and counter) so
        downstream consumers can discount the affected period.

        If the sink raises, the exporter degrades instead of dying:
        entries spill to a bounded retry buffer and are replayed, oldest
        first, after an exponential backoff — see :meth:`_retry_spill`.
        """
        # Entries describe the period that *ended* at ``now``; the first
        # boundary (t=0) observed no full period, so clamp at 0 rather
        # than stamping a negative time into the trace database.
        entry_time = max(0, now - self.period)
        # Delivery ladder, fastest rung both ends support: with the
        # columnar kernel and a block-capable sink the window ships as
        # one TelemetryBlock gathered straight from pool columns; with a
        # merely batch-capable sink it ships as one add_batch call of
        # entry objects; otherwise entries deliver one by one exactly as
        # before.  (A sink wrapper that only implements ``add`` — e.g.
        # the fault injector's outage shim — keeps the per-entry path
        # automatically.)
        use_block = (
            self.prefer_blocks
            and self.machine.pool is not None
            and hasattr(self.sink, "add_block")
        )
        batch: Optional[List[TraceEntry]] = (
            [] if (not use_block
                   and self.machine.pool is not None
                   and hasattr(self.sink, "add_batch"))
            else None
        )
        with self._tracer.span("telemetry.export", sim_time=now):
            self._retry_spill(now)
            if use_block:
                self._export_block(now, entry_time)
            else:
                self._export_entries(now, entry_time, batch)
            gone = set(self._last_promotion) - set(self.machine.memcgs)
            for job_id in gone:
                del self._last_promotion[job_id]
        self._m_exports.inc()

    def _export_entries(
        self, now: int, entry_time: int,
        batch: Optional[List[TraceEntry]],
    ) -> None:
        """Object-path export window (the zero-copy path's oracle)."""
        for job_id, memcg in self.machine.memcgs.items():
            last = self._last_promotion.get(job_id)
            if last is None or last.bins.thresholds != memcg.bins.thresholds:
                if last is not None:
                    self._m_resets.inc()
                    if self.events is not None:
                        self.events.record(
                            now, EventKind.TELEMETRY_HISTOGRAM_RESET,
                            job=job_id,
                            machine=self.machine.machine_id,
                        )
                period_hist = memcg.promotion_histogram.copy()
            else:
                period_hist = memcg.promotion_histogram.diff(last)
            self._last_promotion[job_id] = memcg.promotion_histogram.copy()

            entry = TraceEntry(
                job_id=job_id,
                machine_id=self.machine.machine_id,
                time=entry_time,
                working_set_pages=working_set_pages(
                    memcg.cold_age_histogram, self.slo.min_cold_age_seconds
                ),
                promotion_histogram=period_hist,
                cold_age_histogram=memcg.cold_age_histogram.copy(),
                resident_pages=memcg.resident_pages,
                cpu_cores=self.cpu_lookup(job_id),
            )
            if batch is not None:
                batch.append(entry)
            else:
                self._deliver(now, entry)
        if batch is not None:
            self._deliver_batch(now, batch)
