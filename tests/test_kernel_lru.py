"""Two-list LRU maintenance and reclaim ordering."""

import numpy as np
import pytest

from repro.core.histograms import default_age_bins
from repro.kernel.compression import ContentProfile
from repro.kernel.memcg import MemCg


@pytest.fixture
def lru_memcg(rng):
    profile = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)
    return MemCg("job", 100, profile, default_age_bins(), rng)


class TestLruLists:
    def test_new_pages_start_active(self, lru_memcg):
        idx = lru_memcg.allocate(10)
        assert lru_memcg.lru_active[idx].all()

    def test_idle_scan_demotes_to_inactive(self, lru_memcg):
        idx = lru_memcg.allocate(10)
        lru_memcg.scan_update()  # consumes the allocation touch
        lru_memcg.scan_update()  # now idle: demote
        assert not lru_memcg.lru_active[idx].any()

    def test_access_reactivates(self, lru_memcg):
        idx = lru_memcg.allocate(10)
        lru_memcg.scan_update()
        lru_memcg.scan_update()
        lru_memcg.touch(idx[:3])
        lru_memcg.scan_update()
        assert lru_memcg.lru_active[idx[:3]].all()
        assert not lru_memcg.lru_active[idx[3:]].any()


class TestReclaimOrder:
    def test_inactive_before_active(self, lru_memcg):
        idx = lru_memcg.allocate(10)
        lru_memcg.age_scans[idx] = 5
        lru_memcg.lru_active[idx[:5]] = True
        lru_memcg.lru_active[idx[5:]] = False
        ordered = lru_memcg.reclaim_order(idx)
        # The inactive half leads.
        assert not lru_memcg.lru_active[ordered[:5]].any()
        assert lru_memcg.lru_active[ordered[5:]].all()

    def test_oldest_first_within_list(self, lru_memcg):
        idx = lru_memcg.allocate(4)
        lru_memcg.lru_active[idx] = False
        lru_memcg.age_scans[idx] = [3, 9, 1, 7]
        ordered = lru_memcg.reclaim_order(idx)
        np.testing.assert_array_equal(
            lru_memcg.age_scans[ordered], [9, 7, 3, 1]
        )

    def test_empty_input(self, lru_memcg):
        assert lru_memcg.reclaim_order(np.zeros(0, dtype=np.int64)).size == 0
