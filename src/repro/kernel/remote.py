"""Remote-memory far tier: the alternative the paper declined (§2.1, §3.1).

Memory disaggregation swaps cold pages to other machines' unused DRAM.
The paper lists three blockers for WSC deployment, all of which this model
makes measurable:

1. **failure-domain expansion** — a machine crash now takes out not just
   its own jobs but every borrower whose far pages it was hosting
   (:meth:`RemoteMemoryPool.blast_radius`);
2. **encryption** — pages leaving the machine must be encrypted, adding
   CPU time on both the store and load paths;
3. **tail latency** — a network fabric's latency distribution has a heavy
   tail that a local decompression simply does not.

:class:`RemoteMemoryPool` tracks donor placements for borrowed pages, and
:class:`RemoteAccessModel` samples access latencies, so the zswap-vs-remote
ablation can compare blast radius and latency tails quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Set, Tuple

import numpy as np

from repro.common.validation import check_non_negative, check_positive, require

__all__ = ["RemoteAccessModel", "RemoteMemoryPool"]


@dataclass(frozen=True)
class RemoteAccessModel:
    """Latency/CPU model of page-granular remote memory access.

    Attributes:
        network_base_seconds: median one-way fabric + RDMA completion time.
        network_sigma: lognormal shape of the fabric latency (tail).
        encryption_seconds_per_page: AES-class work per 4 KiB page, paid on
            both swap-out and swap-in (the paper's security requirement).
    """

    network_base_seconds: float = 10e-6
    network_sigma: float = 0.6
    encryption_seconds_per_page: float = 1.5e-6

    def __post_init__(self) -> None:
        check_positive(self.network_base_seconds, "network_base_seconds")
        check_positive(self.network_sigma, "network_sigma")
        check_non_negative(
            self.encryption_seconds_per_page, "encryption_seconds_per_page"
        )

    def sample_read_latencies(
        self, n_pages: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-page promotion latency: fabric round trip + decryption."""
        if n_pages == 0:
            return np.zeros(0)
        network = np.exp(
            rng.normal(
                np.log(self.network_base_seconds),
                self.network_sigma,
                size=n_pages,
            )
        )
        return network + self.encryption_seconds_per_page

    def store_cpu_seconds(self, n_pages: int) -> float:
        """CPU cost of encrypting pages on their way out."""
        return n_pages * self.encryption_seconds_per_page


class RemoteMemoryPool:
    """Tracks which donor machines hold each borrower job's far pages.

    Args:
        machine_ids: the participating machines.
        rng: donor-selection stream.
        fanout: donors each job's far pages are spread across (striping
            improves bandwidth but widens the failure domain).
    """

    def __init__(
        self,
        machine_ids: Sequence[str],
        rng: np.random.Generator,
        fanout: int = 2,
    ):
        require(len(machine_ids) >= 2, "remote memory needs >= 2 machines")
        check_positive(fanout, "fanout")
        self.machine_ids = list(machine_ids)
        self.fanout = min(int(fanout), len(machine_ids) - 1)
        self._rng = rng
        #: job id -> (host machine, {donor machine: pages})
        self._placements: Dict[str, Tuple[str, Dict[str, int]]] = {}

    def place_far_pages(
        self, job_id: str, host_machine: str, pages: int
    ) -> Dict[str, int]:
        """Spread a job's far pages over donors (never its own host)."""
        require(host_machine in self.machine_ids, "unknown host machine")
        check_non_negative(pages, "pages")
        candidates = [m for m in self.machine_ids if m != host_machine]
        donors = list(
            self._rng.choice(candidates, size=self.fanout, replace=False)
        )
        share, remainder = divmod(pages, len(donors))
        allocation = {
            donor: share + (1 if i < remainder else 0)
            for i, donor in enumerate(donors)
        }
        self._placements[job_id] = (host_machine, allocation)
        return allocation

    def donors_of(self, job_id: str) -> Set[str]:
        """Machines currently holding this job's far pages."""
        if job_id not in self._placements:
            return set()
        _, allocation = self._placements[job_id]
        return {donor for donor, pages in allocation.items() if pages > 0}

    def affected_jobs(self, failed_machine: str) -> Set[str]:
        """Jobs damaged by a machine failure.

        A job is affected when the failed machine hosts it *or* holds any
        of its remotely-placed far pages — the §2.1 failure-domain
        expansion.
        """
        affected = set()
        for job_id, (host, allocation) in self._placements.items():
            if host == failed_machine:
                affected.add(job_id)
            elif allocation.get(failed_machine, 0) > 0:
                affected.add(job_id)
        return affected

    def blast_radius(self, failed_machine: str) -> int:
        """Number of jobs a single machine failure damages."""
        return len(self.affected_jobs(failed_machine))

    def hosted_jobs(self, machine_id: str) -> Set[str]:
        """Jobs whose *host* is the given machine (the zswap-equivalent
        failure domain)."""
        return {
            job_id
            for job_id, (host, _) in self._placements.items()
            if host == machine_id
        }
