#!/usr/bin/env python3
"""Ablation: reactive (stock-Linux) zswap vs the paper's proactive design.

Section 3.2 explains why the paper rejected zswap's default trigger —
direct reclaim under memory pressure: savings only materialize when
machines saturate, and the synchronous compression stalls land on
allocation paths at the worst moment.  This example reproduces that
comparison on identical workloads:

* REACTIVE machines only compress when an allocation finds the machine
  short on memory (stalling the allocator);
* PROACTIVE machines run kstaled + the node agent and compress cold pages
  continuously in the background.

Run:
    python examples/reactive_vs_proactive.py
"""

from __future__ import annotations

import numpy as np

from repro.agent import NodeAgent
from repro.analysis import render_table
from repro.common.rng import SeedSequenceFactory
from repro.common.units import HOUR, MIB, PAGE_SIZE
from repro.core import ThresholdPolicyConfig
from repro.kernel import ContentProfile, FarMemoryMode, Machine, MachineConfig
from repro.workloads import HeterogeneousPoissonPattern, make_rates_for_cold_fraction

SIM_HOURS = 4
DRAM = 256 * MIB


def run_mode(mode: FarMemoryMode):
    """One machine, a steady resident job, and periodic burst allocations."""
    seeds = SeedSequenceFactory(11)
    machine = Machine("m", MachineConfig(dram_bytes=DRAM, mode=mode),
                      seeds=seeds)
    agent = NodeAgent(machine,
                      ThresholdPolicyConfig(percentile_k=95, warmup_seconds=300))
    rng = np.random.default_rng(11)

    # A resident job filling ~75% of DRAM, half of it cold.
    resident_pages = int(0.75 * DRAM / PAGE_SIZE)
    machine.add_job("resident", resident_pages,
                    ContentProfile(incompressible_fraction=0.1))
    page_map = machine.allocate("resident", resident_pages)
    pattern = HeterogeneousPoissonPattern(
        make_rates_for_cold_fraction(resident_pages, 0.5, rng)
    )

    # A churning job that repeatedly allocates and frees 30% of DRAM —
    # the allocation bursts that trigger direct reclaim in reactive mode.
    burst_pages = int(0.3 * DRAM / PAGE_SIZE)
    machine.add_job("bursty", burst_pages, ContentProfile())
    burst_live = None

    oom_events = 0
    for t in range(0, SIM_HOURS * HOUR, 60):
        reads, writes = pattern.step(t, 60, rng)
        machine.touch("resident", page_map[reads])
        machine.touch("resident", page_map[writes], write=True)
        if (t // 60) % 20 == 10:  # every 20 min: allocate a burst
            try:
                burst_live = machine.allocate("bursty", burst_pages)
            except Exception:
                oom_events += 1
        elif burst_live is not None and (t // 60) % 20 == 15:
            machine.release("bursty", burst_live)
            burst_live = None
        machine.tick(t)
        agent.maybe_control(t)
    return machine, oom_events


def main() -> None:
    print(f"Running identical workloads for {SIM_HOURS} simulated hours...\n")
    rows = []
    for mode in (FarMemoryMode.REACTIVE, FarMemoryMode.PROACTIVE):
        machine, oom = run_mode(mode)
        stats = machine.zswap.job_stats
        compressed = sum(s.pages_compressed for s in stats.values())
        stall_ms = machine.direct_reclaim.stall_seconds_total * 1e3
        rows.append(
            (
                mode.value,
                compressed,
                f"{machine.saved_bytes() / MIB:.1f} MiB",
                f"{stall_ms:.2f} ms",
                machine.direct_reclaim.invocations,
                oom,
            )
        )
    print(
        render_table(
            ["mode", "pages compressed", "DRAM freed",
             "allocation stall", "direct reclaims", "OOM fails"],
            rows,
            title="Reactive vs proactive far memory (paper §3.2)",
        )
    )
    print(
        "\nProactive compresses continuously with zero allocation-path "
        "stalls;\nreactive only acts under pressure and bills the latency "
        "to the allocating task."
    )


if __name__ == "__main__":
    main()
