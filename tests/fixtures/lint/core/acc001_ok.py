"""ACC001 negative fixture: tolerant or integer comparisons."""

import math


def at_slo(rate, pages, total):
    if math.isclose(rate, 0.2, rel_tol=1e-9):  # tolerance: fine
        return True
    if pages == total:  # integer equality: fine
        return False
    return rate < 0.2  # ordering comparisons: fine
