"""Model-vs-live validation machinery."""

import numpy as np
import pytest

from repro.common.errors import AutotunerError
from repro.core.threshold_policy import ThresholdPolicyConfig
from repro.model import FarMemoryModel, ModelValidator
from repro.model.validation import _spearman


def config(k, s):
    return ThresholdPolicyConfig(percentile_k=k, warmup_seconds=s)


@pytest.fixture
def validator(warm_fleet):
    return ModelValidator(FarMemoryModel(warm_fleet.trace_db.traces()))


class TestSpearman:
    def test_perfect_agreement(self):
        assert _spearman([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert _spearman([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_constant_inputs_are_zero(self):
        assert _spearman([1, 1, 1], [1, 2, 3]) == 0.0


class TestValidator:
    def test_record_evaluates_model(self, validator):
        outcome = validator.record(config(98, 600), live_coverage=0.15,
                                   live_p98=0.2)
        assert outcome.model_cold_pages >= 0
        assert outcome.live_coverage == 0.15

    def test_report_needs_three_configs(self, validator):
        validator.record(config(98, 600), 0.1, 0.2)
        validator.record(config(90, 600), 0.12, 0.3)
        with pytest.raises(AutotunerError):
            validator.report()

    def test_report_correlations(self, validator):
        # Feed live numbers that follow the model's own ordering: the
        # correlations must then be positive.
        configs = [config(99.9, 7200), config(98, 1800), config(80, 300)]
        model_values = [
            validator.model.evaluate(c).total_cold_pages for c in configs
        ]
        order = np.argsort(model_values)
        live = np.empty(3)
        live[order] = [0.05, 0.10, 0.20]
        for c, cov in zip(configs, live):
            p98 = validator.model.evaluate(c).promotion_rate_p98
            validator.record(c, live_coverage=cov, live_p98=p98)
        report = validator.report()
        assert report.objective_rank_correlation == pytest.approx(1.0)
        assert report.constraint_rank_correlation == pytest.approx(1.0)
        assert report.model_ranks_usefully

    def test_live_model_agreement_on_real_fleets(self, warm_fleet):
        """End-to-end: the model's *ordering* of three very different
        configurations matches the live simulator's ordering."""
        from repro.cluster import quickfleet

        validator = ModelValidator(
            FarMemoryModel(warm_fleet.trace_db.traces())
        )
        candidates = [
            config(99.9, 5400),   # very conservative
            config(98.0, 1200),   # moderate
            config(70.0, 120),    # aggressive
        ]
        for c in candidates:
            live = quickfleet(
                clusters=1, machines_per_cluster=2, jobs_per_machine=4,
                seed=2024, policy_config=c,
            )
            live.run(3 * 3600)
            validator.record(
                c,
                live_coverage=live.coverage(),
                live_p98=live.promotion_rate_percentile(98.0),
            )
        report = validator.report()
        assert report.objective_rank_correlation > 0
