"""The online canary controller (repro.autotuner.controller)."""

import pytest

from repro.autotuner import (
    AutotuningPipeline,
    DeploymentStage,
    FleetController,
)
from repro.agent.monitoring import SloMonitor
from repro.cluster import quickfleet
from repro.core.threshold_policy import (
    FixedThresholdPolicy,
    PaperPolicy,
    ThresholdPolicyConfig,
)
from repro.faults import attach_scenario
from repro.model import FarMemoryModel
from repro.obs import MetricName, MetricRegistry, Tracer


STAGES = (
    DeploymentStage("qualification", 0.5, 600),
    DeploymentStage("production", 1.0, 600),
)

#: Demotes pages idle for only two minutes: aggressively over-promotes
#: on any active working set, so it reliably breaches a real SLO limit.
BREACHING = FixedThresholdPolicy(threshold_seconds=120.0, warmup_seconds=0)

#: Demotes essentially nothing: promotion pressure decays toward zero.
CONSERVATIVE = FixedThresholdPolicy(threshold_seconds=86400.0)


def make_fleet(**overrides):
    kwargs = dict(
        clusters=2,
        machines_per_cluster=2,
        jobs_per_machine=2,
        seed=31,
        warmup_hours=0.25,
        registry=MetricRegistry(),
        tracer=Tracer(),
    )
    kwargs.update(overrides)
    registry = kwargs["registry"]
    tracer = kwargs["tracer"]
    return quickfleet(**kwargs), registry, tracer


class TestCanaryRound:
    def test_safe_policy_promotes(self):
        fleet, registry, tracer = make_fleet()
        controller = FleetController(
            fleet, stages=STAGES, slo_limit=1e9,
            registry=registry, tracer=tracer,
        )
        decision = controller.canary(PaperPolicy())
        assert decision.promoted
        assert decision.reason == "promoted"
        assert len(decision.outcomes) == len(STAGES)
        for cluster in fleet.clusters:
            assert cluster.policy == PaperPolicy()
        rounds = registry.counter(
            MetricName.CANARY_ROUNDS_TOTAL, "", ("verdict",)
        )
        assert rounds.labels(verdict="promoted").value == 1

    def test_breaching_policy_never_reaches_production(self):
        fleet, registry, tracer = make_fleet()
        prior = fleet.clusters[0].policy
        controller = FleetController(
            fleet, stages=STAGES, slo_limit=1e-6,
            registry=registry, tracer=tracer,
        )
        decision = controller.canary(BREACHING)
        assert not decision.promoted
        assert decision.reason == "slo-breach"
        # The ladder stopped before the production stage.
        failed = [o for o in decision.outcomes if not o.passed]
        assert failed and failed[0].stage.name != "production"
        # Every cluster is back on its prior policy; the breaching
        # policy is nowhere in the fleet.
        for cluster in fleet.clusters:
            assert cluster.policy == prior
            assert cluster.policy != BREACHING

    def test_rollback_restores_slo_once_the_residual_drains(self):
        # Rollback stops the demotions immediately, but pages the
        # breaching policy already pushed to far memory keep promoting
        # until the jobs holding them churn out. The recovery contract
        # is therefore two-phase: one soak window after rollback the
        # residual has collapsed by an order of magnitude, and one
        # window after that the fleet is healthy again under the very
        # monitor deployment uses.
        fleet, registry, tracer = make_fleet(
            policy_config=CONSERVATIVE,
            warmup_hours=0.5,
            churn_duration_range=(600, 900),
        )
        controller = FleetController(
            fleet, stages=STAGES, slo_limit=0.2,
            registry=registry, tracer=tracer,
        )
        decision = controller.canary(BREACHING)
        assert not decision.promoted
        breach_p98 = decision.p98
        assert breach_p98 > 0.2

        def window_p98():
            before = len(fleet.sli_history)
            fleet.run(STAGES[0].soak_seconds)
            monitor = SloMonitor(
                window_seconds=STAGES[0].soak_seconds, slo_limit=0.2
            )
            monitor.observe(fleet.now, fleet.sli_history[before:])
            assert monitor.samples_ingested > 0
            return monitor.window.percentile(98.0), monitor.healthy

        draining_p98, _ = window_p98()
        assert draining_p98 < breach_p98 / 10.0
        settled_p98, healthy = window_p98()
        assert healthy
        assert settled_p98 <= draining_p98

    def test_sink_outage_fails_the_canary_closed(self):
        # sink_outage blankets every machine over the middle third of
        # the scenario: with warmup 600 s and duration 1800 s, the
        # outage covers the first soak (600..1200 s) exactly — zero
        # slice samples arrive, and the stage must fail closed rather
        # than pass on silence.
        fleet, registry, tracer = make_fleet(warmup_hours=0.0)
        attach_scenario(fleet, "sink_outage", 1800, seed=3)
        fleet.run(600)
        controller = FleetController(
            fleet, stages=STAGES, slo_limit=1e9,
            registry=registry, tracer=tracer,
        )
        decision = controller.canary(PaperPolicy())
        assert not decision.promoted
        assert decision.reason == "insufficient-coverage"
        assert decision.outcomes[-1].slice_samples < 10
        failed_closed = registry.counter(
            MetricName.CANARY_STAGES_FAILED_CLOSED_TOTAL, "", ("stage",)
        )
        assert failed_closed.labels(stage="qualification").value == 1


class TestRunOnline:
    def test_measured_outcomes_feed_the_bandit(self):
        fleet, registry, tracer = make_fleet()
        model = FarMemoryModel(fleet.trace_db.traces())
        pipeline = AutotuningPipeline(
            model, seed=5, registry=registry, tracer=tracer
        )
        controller = FleetController(
            fleet, stages=STAGES, slo_limit=1e9,
            registry=registry, tracer=tracer,
        )
        decisions = controller.run_online(pipeline, rounds=2)
        assert len(decisions) == 2
        assert all(d.promoted for d in decisions)
        assert all(isinstance(d.policy, PaperPolicy) for d in decisions)
        # Every promoted round reported its live measurement back.
        assert len(pipeline.bandit.observations) == 2

    def test_fail_closed_rounds_are_not_reported(self):
        fleet, registry, tracer = make_fleet(
            control_period=7200, warmup_hours=0.25
        )
        model = FarMemoryModel(fleet.trace_db.traces())
        pipeline = AutotuningPipeline(
            model, seed=5, registry=registry, tracer=tracer
        )
        controller = FleetController(
            fleet, stages=STAGES, slo_limit=1e9,
            registry=registry, tracer=tracer,
        )
        decisions = controller.run_online(pipeline, rounds=1)
        assert decisions[0].reason == "insufficient-coverage"
        # Zero telemetry is not a measurement of the configuration.
        assert len(pipeline.bandit.observations) == 0


class TestPolicySwapNeedsNoPlumbing:
    def test_thermostat_deploys_through_the_same_ladder(self):
        from repro.baselines import ThermostatPolicy

        fleet, registry, tracer = make_fleet()
        controller = FleetController(
            fleet, stages=STAGES, slo_limit=1e9,
            registry=registry, tracer=tracer,
        )
        decision = controller.canary(ThermostatPolicy())
        assert decision.promoted
        for cluster in fleet.clusters:
            assert cluster.policy == ThermostatPolicy()
            for agent in cluster.agents.values():
                assert agent.policy == ThermostatPolicy()


class TestConfigCoercion:
    def test_bare_config_is_the_paper_policy(self):
        fleet, registry, tracer = make_fleet()
        controller = FleetController(
            fleet, stages=STAGES[:1], slo_limit=1e9,
            registry=registry, tracer=tracer,
        )
        config = ThresholdPolicyConfig(percentile_k=95.0)
        decision = controller.canary(config)
        assert decision.policy == PaperPolicy(config)

    def test_rejects_non_policies(self):
        fleet, registry, tracer = make_fleet()
        controller = FleetController(
            fleet, registry=registry, tracer=tracer
        )
        with pytest.raises(TypeError):
            controller.canary("not a policy")
