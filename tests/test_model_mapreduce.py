"""The MapReduce-style pipeline engine."""

import pytest

from repro.common.errors import ConfigurationError
from repro.model.mapreduce import MapReduce, mapreduce


def square(x):
    return x * x


def total(values):
    return sum(values)


def identity_list(values):
    return values


#: In-process initializer scratch space (one key per test).
_INIT_SCRATCH = {}


def remember(key, value):
    _INIT_SCRATCH.setdefault(key, {"calls": 0})
    _INIT_SCRATCH[key]["calls"] += 1
    _INIT_SCRATCH[key]["value"] = value


def read_remembered(_item, key):
    return _INIT_SCRATCH[key]["value"]


class TestInProcess:
    def test_map_then_reduce(self):
        assert mapreduce([1, 2, 3, 4], square, total) == 30

    def test_empty_input(self):
        assert mapreduce([], square, total) == 0

    def test_order_preserved(self):
        result = mapreduce([3, 1, 2], lambda x: x, lambda xs: xs)
        assert result == [3, 1, 2]

    def test_single_input(self):
        assert mapreduce([5], square, total) == 25


class TestParallel:
    def test_pool_matches_sequential(self):
        inputs = list(range(50))
        sequential = MapReduce(square, total, workers=1).run(inputs)
        parallel = MapReduce(square, total, workers=2).run(inputs)
        assert sequential == parallel

    def test_pool_preserves_order(self):
        inputs = list(range(20))
        result = MapReduce(square, lambda xs: xs, workers=2).run(inputs)
        assert result == [x * x for x in inputs]


class TestValidation:
    def test_bad_workers(self):
        with pytest.raises(ConfigurationError):
            MapReduce(square, total, workers=0)

    def test_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            MapReduce(square, total, chunk_size=0)

    def test_none_chunk_size_is_auto(self):
        pipeline = MapReduce(square, total)
        assert pipeline.chunk_size is None
        # ceil(100 / (4 * 4)) = 7: thousands of tiny tasks amortize IPC.
        assert pipeline._run_chunk_size(100, 4) == 7
        # A handful of heavy batched tasks spread one per worker.
        assert pipeline._run_chunk_size(3, 3) == 1

    def test_explicit_chunk_size_wins(self):
        pipeline = MapReduce(square, total, chunk_size=5)
        assert pipeline._run_chunk_size(100, 4) == 5


class TestPersistentPool:
    def test_pool_persists_across_runs(self):
        with MapReduce(square, total, workers=2) as pipeline:
            assert pipeline.pool_size == 0
            assert pipeline.run(list(range(10))) == total(
                square(x) for x in range(10)
            )
            assert pipeline.pool_size == 2
            first_pool = pipeline._pool
            pipeline.run(list(range(4)))
            assert pipeline._pool is first_pool
        assert pipeline.pool_size == 0

    def test_workers_clamped_to_inputs(self):
        with MapReduce(square, total, workers=8) as pipeline:
            assert pipeline.run([1, 2, 3]) == 14
            assert pipeline.pool_size == 3

    def test_close_idempotent_and_pool_restartable(self):
        pipeline = MapReduce(square, total, workers=2)
        pipeline.run(list(range(6)))
        pipeline.close()
        pipeline.close()
        assert pipeline.pool_size == 0
        assert pipeline.run(list(range(6))) == total(
            square(x) for x in range(6)
        )
        assert pipeline.pool_size == 2
        pipeline.close()

    def test_started_pool_serves_single_input_runs(self):
        with MapReduce(square, total, workers=2) as pipeline:
            pipeline.run(list(range(8)))
            assert pipeline.run([3]) == 9
            assert pipeline.pool_size == 2


class TestInitializer:
    def test_spawn_workers_receive_payload(self):
        import functools

        pipeline = MapReduce(
            functools.partial(read_remembered, key="spawn"),
            identity_list,
            workers=2,
            initializer=remember,
            initargs=("spawn", "shipped-once"),
        )
        with pipeline:
            assert pipeline.run([1, 2, 3, 4]) == ["shipped-once"] * 4

    def test_in_process_initializer_called_once(self):
        import functools

        _INIT_SCRATCH.pop("local", None)
        pipeline = MapReduce(
            functools.partial(read_remembered, key="local"),
            identity_list,
            initializer=remember,
            initargs=("local", "payload"),
        )
        assert pipeline.run([1]) == ["payload"]
        assert pipeline.run([2]) == ["payload"]
        assert _INIT_SCRATCH["local"]["calls"] == 1
