"""Fleet analysis pipelines against a warmed-up fleet."""

import numpy as np
import pytest

from repro.analysis.fleet_analysis import (
    cold_memory_vs_threshold,
    compression_ratios_per_job,
    cpu_overhead_per_job,
    cpu_overhead_per_machine,
    decompression_latency_samples,
    per_job_cold_fractions,
    per_machine_cold_fractions_by_cluster,
    per_machine_coverage_by_cluster,
)


class TestThresholdSweep:
    def test_cold_fraction_decreases_with_threshold(self, warm_fleet):
        points = cold_memory_vs_threshold(warm_fleet.trace_db.traces())
        fractions = [p.cold_fraction for p in points]
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))

    def test_most_aggressive_threshold_finds_most_cold(self, warm_fleet):
        points = cold_memory_vs_threshold(warm_fleet.trace_db.traces())
        assert points[0].threshold_seconds == 120
        assert points[0].cold_fraction > 0.1

    def test_promotion_rate_positive_at_low_thresholds(self, warm_fleet):
        points = cold_memory_vs_threshold(warm_fleet.trace_db.traces())
        assert points[0].promotion_rate_pct_of_cold_per_min >= 0

    def test_empty_traces(self):
        assert cold_memory_vs_threshold([]) == []


class TestPerJob:
    def test_fractions_in_unit_range(self, warm_fleet):
        fractions = per_job_cold_fractions(warm_fleet.trace_db.traces())
        assert fractions
        assert all(0.0 <= f <= 1.0 for f in fractions)

    def test_jobs_are_heterogeneous(self, warm_fleet):
        fractions = per_job_cold_fractions(warm_fleet.trace_db.traces())
        assert np.std(fractions) > 0.05

    def test_custom_threshold_reduces_fractions(self, warm_fleet):
        traces = warm_fleet.trace_db.traces()
        at_min = np.mean(per_job_cold_fractions(traces))
        at_high = np.mean(per_job_cold_fractions(traces, 3840))
        assert at_high <= at_min


class TestPerMachine:
    def test_cold_fractions_grouped_by_cluster(self, warm_fleet):
        groups = per_machine_cold_fractions_by_cluster(warm_fleet, 120)
        assert len(groups) == len(warm_fleet.clusters)
        for fractions in groups.values():
            assert all(0.0 <= f <= 1.0 for f in fractions)

    def test_coverage_grouped_by_cluster(self, warm_fleet):
        groups = per_machine_coverage_by_cluster(warm_fleet)
        for coverages in groups.values():
            assert all(0.0 <= c <= 1.0 for c in coverages)


class TestCpuOverhead:
    def test_per_job_overheads_small_and_nonnegative(self, warm_fleet):
        compress, decompress = cpu_overhead_per_job(warm_fleet, 4 * 3600)
        assert compress and decompress
        assert all(c >= 0 for c in compress)
        # Even untuned, zswap overhead stays far below 1% of job CPU.
        assert np.percentile(compress, 98) < 1.0

    def test_per_machine_lower_than_per_job_p98(self, warm_fleet):
        job_c, job_d = cpu_overhead_per_job(warm_fleet, 4 * 3600)
        mach_c, mach_d = cpu_overhead_per_machine(warm_fleet, 4 * 3600)
        assert np.median(mach_c) <= np.percentile(job_c, 98) + 1e-9


class TestCompressionStats:
    def test_ratios_within_model_range(self, warm_fleet):
        ratios = compression_ratios_per_job(warm_fleet)
        assert ratios
        assert all(1.0 <= r <= 8.5 for r in ratios)

    def test_latency_samples_in_microsecond_range(self, warm_fleet):
        samples = decompression_latency_samples(warm_fleet)
        assert samples
        assert 1e-6 < np.median(samples) < 20e-6
