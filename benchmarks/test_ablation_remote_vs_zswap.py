"""Ablation (§2.1/§3.1): zswap vs remote memory as the far tier.

The paper chose compression over disaggregation for three measurable
reasons: zswap "confines failure domain within a machine", needs no
encryption of pages leaving the machine, and its 6.4 µs decompression is
competitive with a fabric round trip whose tail is much worse.  This bench
quantifies all three on one synthetic cluster.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_table
from repro.kernel.compression import DEFAULT_LATENCY_MODEL, ContentProfile
from repro.kernel.remote import RemoteAccessModel, RemoteMemoryPool

N_MACHINES = 48
JOBS_PER_MACHINE = 10
FAR_PAGES_PER_JOB = 2000


@pytest.fixture(scope="module")
def deployment():
    rng = np.random.default_rng(11)
    machines = [f"m{i:02d}" for i in range(N_MACHINES)]
    pool = RemoteMemoryPool(machines, rng, fanout=3)
    for m_index, machine in enumerate(machines):
        for j in range(JOBS_PER_MACHINE):
            pool.place_far_pages(
                f"job-{m_index:02d}-{j}", machine, FAR_PAGES_PER_JOB
            )
    return machines, pool, rng


def test_ablation_remote_vs_zswap(benchmark, deployment, save_result):
    machines, pool, rng = deployment

    def measure():
        remote_radius = np.array(
            [pool.blast_radius(m) for m in machines]
        )
        local_radius = np.array(
            [len(pool.hosted_jobs(m)) for m in machines]
        )
        return remote_radius, local_radius

    remote_radius, local_radius = benchmark(measure)

    # Failure domain: remote memory strictly expands it; zswap's domain is
    # exactly the machine's own jobs.
    assert (local_radius == JOBS_PER_MACHINE).all()
    assert remote_radius.mean() > 2 * local_radius.mean()

    # Latency: zswap's local decompression vs fabric + decryption.
    payloads = ContentProfile(
        incompressible_fraction=0.0, min_ratio=1.5
    ).sample_payload_bytes(20_000, rng)
    zswap_lat = DEFAULT_LATENCY_MODEL.decompress_seconds(payloads)
    remote_lat = RemoteAccessModel().sample_read_latencies(20_000, rng)
    z50, z99 = np.percentile(zswap_lat, [50, 99])
    r50, r99 = np.percentile(remote_lat, [50, 99])
    assert z50 < r50
    assert z99 < r99
    # And remote's p99/p50 tail ratio is worse (the WSC tail-latency worry).
    assert (r99 / r50) > (z99 / z50)

    # CPU: encryption is an extra per-page cost zswap does not pay.
    encryption = RemoteAccessModel().store_cpu_seconds(1)
    assert encryption > 0

    save_result(
        "ablation_remote_vs_zswap",
        render_table(
            ["metric", "zswap (local)", "remote memory"],
            [
                ("mean jobs hit by one machine failure",
                 f"{local_radius.mean():.1f}",
                 f"{remote_radius.mean():.1f}"),
                ("worst-case blast radius",
                 int(local_radius.max()), int(remote_radius.max())),
                ("promotion latency p50",
                 f"{z50 * 1e6:.1f} us", f"{r50 * 1e6:.1f} us"),
                ("promotion latency p99",
                 f"{z99 * 1e6:.1f} us", f"{r99 * 1e6:.1f} us"),
                ("tail ratio p99/p50",
                 f"{z99 / z50:.1f}x", f"{r99 / r50:.1f}x"),
                ("extra CPU per swapped page",
                 "0 (no encryption)",
                 f"{encryption * 1e6:.1f} us (encrypt)"),
            ],
            title="§2.1/§3.1 ablation — why zswap over remote memory "
            f"({N_MACHINES} machines, fanout 3)",
        ),
    )
