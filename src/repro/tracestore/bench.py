"""The ``repro bench --trace`` harness behind ``BENCH_trace.json``.

Measures the columnar trace store end to end on a synthetic fleet:
ingest throughput (rows/s through ``append`` + segment sealing), segment
flush latency, and — the headline — replaying the same what-if batch two
ways from the same on-disk store:

* the **object path**: materialize every ``TraceEntry``, build
  ``JobTrace`` objects, compile, evaluate (what the in-memory database
  forces);
* the **columnar path**: ``CompiledTrace.from_columns`` straight from the
  on-disk columns, evaluate (no entry objects at all).

Both paths must produce bit-identical fleet reports (``equivalent``),
and the report carries the compile speedup and the peak-memory ratio
(columnar / object, tracemalloc peaks) — the number that shows a
simulated week of a large fleet fits where the object path would not.
"""

from __future__ import annotations

import gc
import json
import tempfile
import tracemalloc
from pathlib import Path
from typing import Dict, Optional, Union

from repro.common.validation import check_positive
from repro.core.slo import PromotionRateSlo
from repro.model.bench import bench_configs, synthetic_fleet_traces
from repro.model.replay import FarMemoryModel
from repro.model.trace import TelemetryBlock
from repro.obs import Stopwatch
from repro.tracestore.database import ColumnarTraceDatabase

__all__ = ["run_trace_bench"]


def _peak_bytes_during(fn):
    """Run ``fn`` under tracemalloc; returns (result, peak_bytes)."""
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def run_trace_bench(
    jobs: int = 24,
    intervals: int = 288,
    configs: int = 4,
    buffer_rows: int = 2048,
    seed: int = 17,
    root: Optional[Union[str, Path]] = None,
    output: Optional[Union[str, Path]] = None,
) -> Dict:
    """Benchmark the columnar store against the object path.

    Args:
        jobs: synthetic fleet size (one trace per job).
        intervals: 5-minute periods per trace (288 = one day).
        configs: candidate configurations in the what-if batch.
        buffer_rows: store write-buffer size; the default seals several
            segments at the default workload shape so flush latency is
            actually exercised.
        seed: trace-generation seed.
        root: store directory (default: a temporary directory, removed
            afterwards).
        output: when given, the report is also written there as JSON
            (conventionally ``BENCH_trace.json``).

    Returns:
        The report dict; ``equivalent`` is True iff both replay paths
        returned bit-identical fleet reports, and ``peak_mem_ratio``
        below 1.0 means the columnar path peaked lower.
    """
    check_positive(jobs, "jobs")
    check_positive(intervals, "intervals")
    check_positive(configs, "configs")
    tmpdir: Optional[tempfile.TemporaryDirectory] = None
    if root is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-tracebench-")
        root = Path(tmpdir.name) / "store"
    try:
        traces = synthetic_fleet_traces(jobs, intervals, seed)
        batch = bench_configs(configs)
        slo = PromotionRateSlo()

        # Ingest: every entry through the TraceSink surface.
        db = ColumnarTraceDatabase(root, buffer_rows=buffer_rows)
        with Stopwatch() as ingest_watch:
            for trace in traces:
                for entry in trace.entries:
                    db.add(entry)
            db.flush()
        store = db.store
        rows = store.rows_total

        # Object path: disk -> TraceEntry objects -> JobTrace -> compile.
        def _object_path():
            with Stopwatch() as compile_watch:
                materialized = db.traces()
                model = FarMemoryModel(materialized, slo)
                model.compiled_traces
            with model, Stopwatch() as eval_watch:
                reports = model.evaluate_many(batch)
            return reports, compile_watch.seconds, eval_watch.seconds

        (obj_reports, obj_compile, obj_eval), obj_peak = _peak_bytes_during(
            _object_path
        )

        # Columnar path: disk -> CompiledTrace.from_columns -> evaluate.
        def _columnar_path():
            with Stopwatch() as compile_watch:
                compiled = db.compiled_traces()
                model = FarMemoryModel(compiled, slo)
            with model, Stopwatch() as eval_watch:
                reports = model.evaluate_many(batch)
            return reports, compile_watch.seconds, eval_watch.seconds

        (col_reports, col_compile, col_eval), col_peak = _peak_bytes_during(
            _columnar_path
        )

        # Zero-copy ingest: the same rows regrouped into per-window
        # export batches (what the telemetry exporter ships), ingested
        # three ways — one TraceEntry at a time (``add``, the pre-block
        # baseline), as entry batches (``add_batch``, the bit-equivalence
        # oracle), and as prebuilt ``TelemetryBlock`` columns
        # (``add_block``).  Blocks are built outside the timed region: in
        # production they come straight from kernel pool gathers, never
        # from entries, so the timer isolates exactly the sink-side hop
        # the zero-copy path removes.  Batch and block share one delivery
        # granularity, so those two stores must come out byte-identical,
        # manifest included (the per-entry store seals at per-row
        # boundaries, so only its contents — not its segment cuts — line
        # up).  Timing runs without tracemalloc; peaks come from
        # separate untimed passes so allocator tracking never skews the
        # rows/s comparison.
        by_time: Dict[int, list] = {}
        for trace in traces:
            for entry in trace.entries:
                by_time.setdefault(entry.time, []).append(entry)
        windows = [by_time[t] for t in sorted(by_time)]
        blocks = [TelemetryBlock.from_entries(w) for w in windows]
        flat_entries = [entry for window in windows for entry in window]
        zc_dir = Path(tempfile.mkdtemp(prefix="repro-zerocopy-bench-"))

        def _entry_ingest(where):
            db_zc = ColumnarTraceDatabase(
                zc_dir / where, buffer_rows=buffer_rows
            )
            with Stopwatch() as watch:
                for entry in flat_entries:
                    db_zc.add(entry)
                db_zc.flush()
            return watch.seconds

        def _batch_ingest(where):
            db_zc = ColumnarTraceDatabase(
                zc_dir / where, buffer_rows=buffer_rows
            )
            with Stopwatch() as watch:
                for window in windows:
                    db_zc.add_batch(window)
                db_zc.flush()
            return watch.seconds

        def _block_ingest(where):
            db_zc = ColumnarTraceDatabase(
                zc_dir / where, buffer_rows=buffer_rows
            )
            with Stopwatch() as watch:
                for block in blocks:
                    db_zc.add_block(block)
                db_zc.flush()
            return watch.seconds

        try:
            # Interleaved mean-of-five per path, collector paused:
            # single-shot walls at this scale swing by tens of percent
            # with CPU frequency modes and GC pauses, enough to smear a
            # ~3x ratio either way.  Interleaving exposes every path to
            # the same mode mixture and the mean (unlike min, which can
            # hand one path a lucky fast-mode rep) keeps the ratio
            # stable.
            walls: Dict[str, list] = {"entry": [], "batch": [], "block": []}
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                for rep in range(5):
                    walls["entry"].append(_entry_ingest(f"entry-{rep}"))
                    walls["batch"].append(_batch_ingest(f"batch-{rep}"))
                    walls["block"].append(_block_ingest(f"block-{rep}"))
            finally:
                if gc_was_enabled:
                    gc.enable()
            entry_wall = sum(walls["entry"]) / len(walls["entry"])
            batch_wall = sum(walls["batch"]) / len(walls["batch"])
            block_wall = sum(walls["block"]) / len(walls["block"])
            _, entry_peak = _peak_bytes_during(
                lambda: _entry_ingest("entry-mem")
            )
            _, block_peak = _peak_bytes_during(
                lambda: _block_ingest("block-mem")
            )
            batch_files = sorted(
                p.name for p in (zc_dir / "batch-0").iterdir()
            )
            block_files = sorted(
                p.name for p in (zc_dir / "block-0").iterdir()
            )
            ingest_identical = batch_files == block_files and all(
                (zc_dir / "batch-0" / name).read_bytes()
                == (zc_dir / "block-0" / name).read_bytes()
                for name in batch_files
            )
        finally:
            import shutil

            shutil.rmtree(zc_dir, ignore_errors=True)

        def _rate(wall):
            return round(rows / wall, 1) if wall > 0 else 0.0

        zero_copy = {
            "windows": len(windows),
            "entry_path": {
                "wall_seconds": round(entry_wall, 4),
                "rows_per_second": _rate(entry_wall),
                "peak_bytes": entry_peak,
            },
            "batch_path": {
                "wall_seconds": round(batch_wall, 4),
                "rows_per_second": _rate(batch_wall),
            },
            "block_path": {
                "wall_seconds": round(block_wall, 4),
                "rows_per_second": _rate(block_wall),
                "peak_bytes": block_peak,
            },
            "speedup": (
                round(entry_wall / block_wall, 2) if block_wall > 0 else None
            ),
            "speedup_vs_batch": (
                round(batch_wall / block_wall, 2) if block_wall > 0 else None
            ),
            "peak_mem_ratio": (
                round(block_peak / entry_peak, 3) if entry_peak > 0 else None
            ),
            "stores_byte_identical": ingest_identical,
        }

        equivalent = obj_reports == col_reports and ingest_identical
        report = {
            "workload": {
                "jobs": jobs,
                "intervals": intervals,
                "configs": configs,
                "buffer_rows": buffer_rows,
                "seed": seed,
            },
            "ingest": {
                "rows": rows,
                "wall_seconds": round(ingest_watch.seconds, 4),
                "rows_per_second": (
                    round(rows / ingest_watch.seconds, 1)
                    if ingest_watch.seconds > 0
                    else 0.0
                ),
                "zero_copy": zero_copy,
            },
            "flush": {
                "segments": store.flush_count,
                "bytes_written": store.bytes_written,
                "mean_seconds": (
                    round(store.flush_seconds_total / store.flush_count, 5)
                    if store.flush_count
                    else 0.0
                ),
                "last_seconds": round(store.last_flush_seconds, 5),
            },
            "object_path": {
                "compile_wall_seconds": round(obj_compile, 4),
                "evaluate_wall_seconds": round(obj_eval, 4),
                "peak_bytes": obj_peak,
            },
            "columnar_path": {
                "compile_wall_seconds": round(col_compile, 4),
                "evaluate_wall_seconds": round(col_eval, 4),
                "peak_bytes": col_peak,
            },
            "compile_speedup": (
                round(obj_compile / col_compile, 2) if col_compile > 0 else None
            ),
            "peak_mem_ratio": (
                round(col_peak / obj_peak, 3) if obj_peak > 0 else None
            ),
            "equivalent": equivalent,
        }
        if output is not None:
            Path(output).write_text(
                json.dumps(report, indent=2) + "\n", encoding="utf-8"
            )
        return report
    finally:
        if tmpdir is not None:
            tmpdir.cleanup()
