"""DET003 positive fixture: unordered iteration -> ordered accumulation."""


def drain(shards):
    merged = []
    for shard in shards.values():  # finding: dict view into append
        merged.append(shard.result)
    return merged


def collect(pending):
    out = []
    for item in set(pending):  # finding: set() into append
        out.append(item)
    return out


def flatten(shards):
    return [s for s in shards.items()]  # finding: list comp over view
