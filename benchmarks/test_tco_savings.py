"""Section 6.1's TCO table: measured coverage -> DRAM TCO saving.

Paper: 20 % coverage x 32 % cold bound x 67 % cost reduction per
compressed byte = 4-5 % of DRAM TCO, "millions of dollars at WSC scale",
with negligible CPU debit.  We regenerate the table from the measurement
fleet's own coverage, cold fraction, compression ratio, and CPU overhead.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import compression_ratios_per_job, render_table
from repro.common.units import HOUR
from repro.core import TcoModel


def test_tco_savings_table(benchmark, paper_fleet, save_result):
    report = paper_fleet.coverage_report()
    ratios = compression_ratios_per_job(paper_fleet)
    mean_ratio = float(np.mean(ratios))

    elapsed = 8 * HOUR
    zswap_seconds = sum(
        stats.compress_seconds + stats.decompress_seconds
        for machine in paper_fleet.machines
        for stats in machine.zswap.job_stats.values()
    )
    cores_overhead = zswap_seconds / (len(paper_fleet.machines) * elapsed)

    model = TcoModel(fleet_dram_gib=10_000_000)  # an exabyte-class fleet
    tco = benchmark(
        model.evaluate,
        coverage=report["coverage"],
        cold_fraction=report["cold_fraction_at_min_threshold"],
        compression_ratio=mean_ratio,
        cpu_cores_per_machine_overhead=cores_overhead,
        machines=30_000,
    )

    # Paper band: ~4-5% of DRAM TCO with 20% coverage.  Our measured
    # coverage differs, so check the arithmetic and the order: savings are
    # a few percent and the CPU debit is negligible.
    assert 0.005 <= tco.dram_saving_fraction <= 0.12
    assert tco.dram_dollars_saved_per_year > 1_000_000
    assert tco.cpu_overhead_dollars_per_year < (
        0.05 * tco.dram_dollars_saved_per_year
    )
    assert tco.net_dollars_saved_per_year > 0

    save_result(
        "tco_savings",
        render_table(
            ["input / output", "value", "paper"],
            [
                ("coverage", f"{report['coverage']:.1%}", "20%"),
                ("cold fraction @120s",
                 f"{report['cold_fraction_at_min_threshold']:.1%}", "32%"),
                ("mean compression ratio", f"{mean_ratio:.2f}x", "3x"),
                ("DRAM TCO saving", f"{tco.dram_saving_fraction:.2%}",
                 "4-5%"),
                ("$ saved / year (10M GiB fleet)",
                 f"${tco.dram_dollars_saved_per_year:,.0f}", "millions"),
                ("CPU debit / year",
                 f"${tco.cpu_overhead_dollars_per_year:,.0f}",
                 "negligible"),
            ],
            title="§6.1 — memory TCO savings",
        ),
    )
