"""The autotuning pipeline (paper §5.3).

The paper's loop, verbatim:

1. run GP-Bandit over existing observations to obtain configurations to
   explore;
2. run the fast far memory model over a week of fleet traces, estimating
   cold memory captured and the p98 promotion rate per configuration;
3. add observations to the pool; repeat until the iteration budget is
   spent.

The best feasible configuration is then handed to staged deployment
(:mod:`repro.autotuner.deployment`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.common.errors import AutotunerError
from repro.common.validation import check_positive
from repro.core.threshold_policy import ThresholdPolicyConfig
from repro.model.replay import FarMemoryModel, FleetReplayReport
from repro.autotuner.gp_bandit import GpBandit
from repro.autotuner.search_space import (
    SearchSpace,
    config_from_values,
    far_memory_search_space,
)
from repro.obs import (
    MetricName,
    MetricRegistry,
    Tracer,
    get_registry,
    get_tracer,
)

__all__ = ["Trial", "TuningResult", "AutotuningPipeline"]


@dataclass(frozen=True)
class Trial:
    """One evaluated configuration.

    Attributes:
        config: the policy parameters tried.
        report: the fast-model replay report.
        iteration: which pipeline iteration produced it.
    """

    config: ThresholdPolicyConfig
    report: FleetReplayReport
    iteration: int

    @property
    def feasible(self) -> bool:
        return self.report.meets_slo

    @property
    def objective(self) -> float:
        return self.report.total_cold_pages


@dataclass
class TuningResult:
    """Outcome of a pipeline run.

    Attributes:
        trials: every evaluated trial, in order.
        best: the best feasible trial (None if nothing was feasible).
    """

    trials: List[Trial] = field(default_factory=list)
    best: Optional[Trial] = None

    @property
    def best_config(self) -> ThresholdPolicyConfig:
        """The winning configuration.

        Raises:
            AutotunerError: if no feasible configuration was found.
        """
        if self.best is None:
            raise AutotunerError("no feasible configuration found")
        return self.best.config

    def objective_curve(self) -> List[float]:
        """Best feasible objective after each trial (for convergence plots)."""
        curve = []
        best_so_far = float("-inf")
        for trial in self.trials:
            if trial.feasible:
                best_so_far = max(best_so_far, trial.objective)
            curve.append(best_so_far)
        return curve


class AutotuningPipeline:
    """GP-Bandit over the fast far memory model.

    Args:
        model: the fleet replay model (built from a week of traces).
        space: the parameter space; defaults to the paper's (K, S).
        batch_size: configurations evaluated per bandit iteration.
        seed: bandit candidate-sampling seed.
        registry: metrics registry (defaults to the process-global one).
        tracer: span tracer (defaults to the process-global one).
    """

    def __init__(
        self,
        model: FarMemoryModel,
        space: Optional[SearchSpace] = None,
        batch_size: int = 4,
        seed: int = 0,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        check_positive(batch_size, "batch_size")
        self.model = model
        self.space = space if space is not None else far_memory_search_space()
        self.batch_size = int(batch_size)
        registry = registry if registry is not None else get_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        self.bandit = GpBandit(
            self.space,
            constraint_limit=model.slo.target_pct_per_min,
            seed=seed,
            registry=registry,
            tracer=self._tracer,
        )
        self._m_trials = registry.counter(
            MetricName.AUTOTUNER_TRIALS_TOTAL,
            "Configurations evaluated by the fast far memory model."
        )
        self._m_feasible = registry.counter(
            MetricName.AUTOTUNER_FEASIBLE_TRIALS_TOTAL,
            "Evaluated configurations that met the promotion-rate SLO."
        )
        self._g_best = registry.gauge(
            MetricName.AUTOTUNER_BEST_OBJECTIVE_COLD_PAGES,
            "Best feasible objective (cold pages captured) so far."
        )

    def run(self, iterations: int = 8) -> TuningResult:
        """Execute the explore-evaluate-observe loop."""
        check_positive(iterations, "iterations")
        result = TuningResult()
        for iteration in range(iterations):
            with self._tracer.span("autotuner.iteration", iteration=iteration):
                points = self.bandit.suggest(self.batch_size)
                configs = [
                    config_from_values(self.space.from_unit(point))
                    for point in points
                ]
                # One batched model call per bandit iteration: the fast
                # model replays the whole suggestion batch in a single
                # MapReduce over the fleet traces.
                with self._tracer.span("autotuner.evaluate", batch=len(configs)):
                    reports = self.model.evaluate_many(configs)
                for point, config, report in zip(points, configs, reports):
                    self.bandit.observe(
                        point,
                        objective=report.total_cold_pages,
                        constraint=report.promotion_rate_p98,
                    )
                    trial = Trial(config, report, iteration)
                    result.trials.append(trial)
                    self._m_trials.inc()
                    if trial.feasible:
                        self._m_feasible.inc()
            best = self.bandit.best()
            if best is not None:
                self._g_best.set(best.objective)

        # The bandit's observation pool can outlive one run() (e.g. a warm
        # start seeded it with feasible points), so bandit.best() being
        # non-None does not guarantee *this* run produced a feasible trial.
        feasible = [t for t in result.trials if t.feasible]
        if feasible:
            result.best = max(feasible, key=lambda t: t.objective)
        return result

    def propose(self):
        """One bandit suggestion for *online* evaluation.

        Where :meth:`run` scores suggestions with the fast offline model,
        the online controller (:mod:`repro.autotuner.controller`) canaries
        them on the live fleet and reports the measured outcome back via
        :meth:`observe_measured`.

        Returns:
            ``(point, config)`` — the bandit's unit-cube point and the
            decoded :class:`ThresholdPolicyConfig`.
        """
        point = self.bandit.suggest(1)[0]
        return point, config_from_values(self.space.from_unit(point))

    def observe_measured(self, point, objective: float,
                         constraint: float) -> None:
        """Feed a live-fleet measurement back into the bandit.

        Args:
            point: the unit-cube point :meth:`propose` returned.
            objective: cold pages captured (higher is better).
            constraint: measured p98 normalized promotion rate.
        """
        self.bandit.observe(point, objective=float(objective),
                            constraint=float(constraint))
        self._m_trials.inc()
        if constraint <= self.model.slo.target_pct_per_min:
            self._m_feasible.inc()
        best = self.bandit.best()
        if best is not None:
            self._g_best.set(best.objective)

    def run_random_baseline(
        self, n_trials: int, seed: int = 1
    ) -> TuningResult:
        """Random search at the same trial budget (the ablation baseline)."""
        check_positive(n_trials, "n_trials")
        rng = np.random.default_rng(seed)
        result = TuningResult()
        # Draw every point up front (same rng stream as the one-at-a-time
        # loop), then evaluate in batched model calls of batch_size.
        points = [rng.random(self.space.dim) for _ in range(n_trials)]
        configs = [
            config_from_values(self.space.from_unit(point)) for point in points
        ]
        for start in range(0, n_trials, self.batch_size):
            batch = configs[start:start + self.batch_size]
            for offset, report in enumerate(self.model.evaluate_many(batch)):
                index = start + offset
                result.trials.append(Trial(configs[index], report, index))
        feasible = [t for t in result.trials if t.feasible]
        if feasible:
            result.best = max(feasible, key=lambda t: t.objective)
        return result
