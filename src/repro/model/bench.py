"""The ``repro bench --model`` harness behind ``BENCH_model.json``.

Times the same what-if evaluation three ways over a synthetic fleet of
traces — the seed behavior (scalar interval-by-interval replay, one model
call per config), the batched vectorized path (one ``evaluate_many`` over
compiled tensors, in-process), and the batched vectorized path through the
persistent worker pool — and reports configs/sec for each, the speedups
over the scalar baseline, and whether all three produced bit-identical
fleet reports.  ``docs/performance.md`` explains how to read the output.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.common.validation import check_positive
from repro.core.histograms import AgeHistogram, default_age_bins
from repro.core.slo import PromotionRateSlo
from repro.core.threshold_policy import ThresholdPolicyConfig
from repro.engine.parallel import default_worker_count
from repro.model.replay import FarMemoryModel, FleetReplayReport
from repro.model.trace import TRACE_PERIOD_SECONDS, JobTrace, TraceEntry

__all__ = ["run_model_bench", "synthetic_fleet_traces", "bench_configs"]


def synthetic_fleet_traces(
    jobs: int, intervals: int, seed: int
) -> List[JobTrace]:
    """A deterministic synthetic fleet of per-job traces.

    Jobs get lognormal-ish working sets and promotion/cold histograms
    whose mass drifts over time, so the replayed thresholds actually move
    (a constant trace would let the rolling percentile degenerate and
    understate the scalar path's cost).
    """
    check_positive(jobs, "jobs")
    check_positive(intervals, "intervals")
    rng = np.random.default_rng(seed)
    bins = default_age_bins()
    traces = []
    for j in range(jobs):
        trace = JobTrace(f"bench-job-{j}")
        base_wss = int(rng.integers(2_000, 200_000))
        for t in range(intervals):
            promo = AgeHistogram(bins)
            cold = AgeHistogram(bins)
            drift = 1.0 + 0.5 * np.sin(2.0 * np.pi * t / max(intervals, 1))
            promo.add_binned(
                rng.integers(0, max(2, int(base_wss * 0.002 * drift)),
                             size=len(bins))
            )
            cold.add_binned(
                rng.integers(0, max(2, int(base_wss * 0.05)), size=len(bins))
            )
            wss = max(0, int(base_wss * drift + rng.integers(-500, 500)))
            trace.append(
                TraceEntry(
                    job_id=trace.job_id,
                    machine_id=f"bench-m{j % 16}",
                    time=t * TRACE_PERIOD_SECONDS,
                    working_set_pages=wss,
                    promotion_histogram=promo,
                    cold_age_histogram=cold,
                    resident_pages=wss + int(rng.integers(0, base_wss)),
                )
            )
        traces.append(trace)
    return traces


def bench_configs(count: int) -> List[ThresholdPolicyConfig]:
    """A deterministic batch of candidate configurations spanning the
    autotuner's search dimensions (K, S, history, spike reaction)."""
    check_positive(count, "count")
    ks = (90.0, 95.0, 98.0, 99.0)
    warmups = (600, 1800)
    histories = (60, 120)
    configs = []
    index = 0
    while len(configs) < count:
        configs.append(
            ThresholdPolicyConfig(
                percentile_k=ks[index % len(ks)],
                warmup_seconds=warmups[(index // len(ks)) % len(warmups)],
                history_length=histories[(index // 8) % len(histories)],
                spike_reaction=(index % 5) != 4,
            )
        )
        index += 1
    return configs


def _reports_equal(
    a: List[FleetReplayReport], b: List[FleetReplayReport]
) -> bool:
    """Bit-identical fleet reports (dataclass equality covers thresholds,
    cold pages, normalized rates, and both headline numbers)."""
    return a == b


def run_model_bench(
    jobs: int = 24,
    intervals: int = 288,
    configs: int = 8,
    workers: Optional[int] = None,
    seed: int = 17,
    output: Optional[Union[str, Path]] = None,
) -> Dict:
    """Run the scalar-vs-vectorized model throughput comparison.

    Args:
        jobs: synthetic fleet size (one trace per job).
        intervals: 5-minute periods per trace (288 = one day).
        configs: candidate configurations per batch.
        workers: pool size for the parallel mode (default: usable CPUs
            capped at 4; 1 skips the parallel mode).
        seed: trace-generation seed; all modes replay the same fleet,
            which is what makes the equivalence check meaningful.
        output: when given, the report is also written there as JSON
            (conventionally ``BENCH_model.json``).

    Returns:
        The report dict: workload shape, per-mode wall seconds and
        configs/sec, ``speedup_vectorized`` / ``speedup_parallel`` over
        the scalar baseline, the best ``configs_per_second`` headline, and
        ``equivalent`` (all modes returned bit-identical reports).
    """
    check_positive(configs, "configs")
    if workers is None:
        workers = min(4, default_worker_count())
    slo = PromotionRateSlo()
    traces = synthetic_fleet_traces(jobs, intervals, seed)
    batch = bench_configs(configs)

    # Seed behavior: scalar interval loop, one model call per config.
    scalar_model = FarMemoryModel(traces, slo, vectorized=False)
    start = time.perf_counter()
    scalar_reports = [scalar_model.evaluate(config) for config in batch]
    scalar_wall = time.perf_counter() - start

    # Batched vectorized, in-process.
    with FarMemoryModel(traces, slo) as vec_model:
        vec_model.compiled_traces  # compile outside the timed region
        start = time.perf_counter()
        vec_reports = vec_model.evaluate_many(batch)
        vec_wall = time.perf_counter() - start

    # Batched vectorized through the persistent pool (warmed: the first
    # call pays pool start-up and payload shipping, the timed call shows
    # the steady state an autotuning run sees).
    parallel_wall = None
    parallel_reports = vec_reports
    if workers > 1:
        with FarMemoryModel(traces, slo, workers=workers) as par_model:
            par_model.evaluate_many(batch[:1])
            start = time.perf_counter()
            parallel_reports = par_model.evaluate_many(batch)
            parallel_wall = time.perf_counter() - start

    equivalent = _reports_equal(scalar_reports, vec_reports) and (
        _reports_equal(vec_reports, parallel_reports)
    )

    def _mode(wall: float) -> Dict:
        return {
            "wall_seconds": round(wall, 4),
            "configs_per_second": round(configs / wall, 2) if wall > 0 else 0.0,
        }

    best_wall = min(w for w in (vec_wall, parallel_wall) if w is not None)
    report = {
        "model": {
            "jobs": jobs,
            "intervals": intervals,
            "configs": configs,
            "seed": seed,
        },
        "host_cpus": default_worker_count(),
        "scalar": _mode(scalar_wall),
        "vectorized": _mode(vec_wall),
        "parallel": (
            dict(_mode(parallel_wall), workers=workers)
            if parallel_wall is not None
            else None
        ),
        "speedup_vectorized": round(scalar_wall / vec_wall, 2),
        "speedup_parallel": (
            round(scalar_wall / parallel_wall, 2)
            if parallel_wall is not None
            else None
        ),
        "configs_per_second": round(configs / best_wall, 2),
        "equivalent": equivalent,
    }
    if output is not None:
        Path(output).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    return report
