"""GP-Bandit: constrained Bayesian optimization (paper §5.3).

The paper optimizes far-memory parameters with Gaussian Process Bandit
[Srinivas et al. 2010; Golovin et al. 2017]: a GP models the objective
surface, an upper-confidence-bound acquisition balances exploration and
exploitation, and the next trial is the acquisition's argmax.

The far-memory problem is *constrained* — maximize cold memory captured
subject to p98 promotion rate <= SLO — so a second GP models the
constraint and the acquisition is weighted by the probability of
feasibility (constrained UCB / expected-feasible-improvement style).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy.stats import norm

from repro.common.validation import check_positive, require
from repro.autotuner.gp import GaussianProcess
from repro.autotuner.kernels import Matern52Kernel
from repro.autotuner.search_space import SearchSpace
from repro.obs import (
    MetricName,
    MetricRegistry,
    Tracer,
    get_registry,
    get_tracer,
)

__all__ = ["Observation", "GpBandit"]


@dataclass(frozen=True)
class Observation:
    """One completed trial.

    Attributes:
        point: unit-cube coordinates of the configuration.
        objective: the value being maximized (cold memory captured).
        constraint: the constrained metric (p98 promotion rate); must be
            <= ``constraint_limit`` (set on the bandit) to be feasible.
    """

    point: np.ndarray
    objective: float
    constraint: float


class GpBandit:
    """Constrained GP-UCB over a box search space.

    Args:
        space: the parameter space (GPs operate on its unit cube).
        constraint_limit: feasibility boundary for the constraint metric.
        beta: UCB exploration weight (std multiplier).
        candidates_per_suggest: random candidates scored per suggestion.
        seed: RNG seed for candidate sampling.
        acquisition: ``"ucb"`` (upper confidence bound, the GP-Bandit
            default) or ``"ei"`` (expected improvement over the best
            feasible observation) — both feasibility-weighted.
        registry: metrics registry (defaults to the process-global one).
        tracer: span tracer (defaults to the process-global one).
    """

    ACQUISITIONS = ("ucb", "ei")

    def __init__(
        self,
        space: SearchSpace,
        constraint_limit: float,
        beta: float = 2.0,
        candidates_per_suggest: int = 2048,
        seed: int = 0,
        acquisition: str = "ucb",
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        check_positive(beta, "beta")
        check_positive(candidates_per_suggest, "candidates_per_suggest")
        require(
            acquisition in self.ACQUISITIONS,
            f"unknown acquisition {acquisition!r}; known: {self.ACQUISITIONS}",
        )
        self.space = space
        self.constraint_limit = float(constraint_limit)
        self.beta = float(beta)
        self.candidates_per_suggest = int(candidates_per_suggest)
        self.acquisition = acquisition
        self._rng = np.random.default_rng(seed)
        self.observations: List[Observation] = []

        registry = registry if registry is not None else get_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        self._m_suggestions = registry.counter(
            MetricName.BANDIT_SUGGESTIONS_TOTAL,
            "Configurations proposed by the GP bandit."
        )
        self._m_observations = registry.counter(
            MetricName.BANDIT_OBSERVATIONS_TOTAL,
            "Completed trials fed back to the GP bandit."
        )

    # ------------------------------------------------------------------
    # Observation bookkeeping
    # ------------------------------------------------------------------

    def observe(
        self, point: np.ndarray, objective: float, constraint: float
    ) -> None:
        """Record a completed trial."""
        point = np.asarray(point, dtype=np.float64).ravel()
        require(point.size == self.space.dim, "point dimension mismatch")
        require(np.isfinite(objective), "objective must be finite")
        require(np.isfinite(constraint), "constraint must be finite")
        self.observations.append(Observation(point, objective, constraint))
        self._m_observations.inc()

    @property
    def feasible_observations(self) -> List[Observation]:
        """Trials that satisfied the constraint."""
        return [
            o for o in self.observations if o.constraint <= self.constraint_limit
        ]

    def best(self) -> Optional[Observation]:
        """Best feasible trial so far (None if no trial was feasible)."""
        feasible = self.feasible_observations
        if not feasible:
            return None
        return max(feasible, key=lambda o: o.objective)

    # ------------------------------------------------------------------
    # Suggestion
    # ------------------------------------------------------------------

    def suggest(self, n: int = 1) -> List[np.ndarray]:
        """Propose the next ``n`` configurations to try.

        With fewer than ``2 * dim`` observations, suggestions are
        space-filling (Latin hypercube).  Afterwards each suggestion
        maximizes feasibility-weighted UCB over a fresh random candidate
        set; batch diversity comes from penalizing candidates close to
        already-chosen batch members.
        """
        check_positive(n, "n")
        with self._tracer.span("gp_bandit.suggest", n=n):
            if len(self.observations) < 2 * self.space.dim:
                self._m_suggestions.inc(n)
                return list(self.space.sample(n, self._rng))

            objective_gp, constraint_gp = self._fit_models()
            chosen: List[np.ndarray] = []
            for _ in range(n):
                candidates = self._rng.random(
                    (self.candidates_per_suggest, self.space.dim)
                )
                scores = self._acquisition(
                    candidates, objective_gp, constraint_gp
                )
                for prior in chosen:
                    distance = np.linalg.norm(candidates - prior, axis=1)
                    scores = np.where(distance < 0.05, -np.inf, scores)
                chosen.append(candidates[int(np.argmax(scores))])
            self._m_suggestions.inc(n)
            return chosen

    def _fit_models(self) -> Tuple[GaussianProcess, GaussianProcess]:
        with self._tracer.span("gp_bandit.fit"):
            return self._fit_models_inner()

    def _fit_models_inner(self) -> Tuple[GaussianProcess, GaussianProcess]:
        x = np.vstack([o.point for o in self.observations])
        y_obj = np.array([o.objective for o in self.observations])
        y_con = np.array([o.constraint for o in self.observations])
        objective_gp = GaussianProcess(Matern52Kernel(0.2)).fit(
            x, y_obj, optimize_hyperparameters=len(self.observations) >= 5
        )
        constraint_gp = GaussianProcess(Matern52Kernel(0.2)).fit(
            x, y_con, optimize_hyperparameters=len(self.observations) >= 5
        )
        return objective_gp, constraint_gp

    def _acquisition(
        self,
        candidates: np.ndarray,
        objective_gp: GaussianProcess,
        constraint_gp: GaussianProcess,
    ) -> np.ndarray:
        """Feasibility-weighted UCB (feasibility-only until one feasible
        trial exists)."""
        con_mean, con_std = constraint_gp.predict(candidates)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = (self.constraint_limit - con_mean) / np.where(
                con_std > 0, con_std, np.inf
            )
        feasibility = norm.cdf(z)
        # Deterministic-feasible points (zero predictive std) get 0/1.
        exact = con_std <= 0
        feasibility = np.where(
            exact, (con_mean <= self.constraint_limit).astype(float), feasibility
        )
        best = self.best()
        if best is None:
            # Nothing feasible found yet: hunt the feasible region itself
            # (maximize probability of feasibility; objective only breaks
            # ties).  Without this, a thin feasible sliver can starve.
            mean, std = objective_gp.predict(candidates)
            span = mean.max() - mean.min()
            tiebreak = (mean - mean.min()) / span if span > 0 else 0.0
            return feasibility + 1e-3 * tiebreak
        mean, std = objective_gp.predict(candidates)
        if self.acquisition == "ei":
            # Expected improvement over the best feasible observation.
            with np.errstate(divide="ignore", invalid="ignore"):
                z = (mean - best.objective) / np.where(std > 0, std, np.inf)
            value = (mean - best.objective) * norm.cdf(z) + std * norm.pdf(z)
            value = np.where(std > 0, value,
                             np.maximum(mean - best.objective, 0.0))
        else:
            value = mean + self.beta * std
        # Shift to be positive so the feasibility weight cannot flip the
        # preference ordering of infeasible-but-high-value points.
        shifted = value - value.min() + 1e-9
        return shifted * feasibility
