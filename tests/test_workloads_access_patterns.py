"""Access-pattern generators, including steady-state coldness properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.units import DAY, HOUR
from repro.workloads.access_patterns import (
    DiurnalModulation,
    HeterogeneousPoissonPattern,
    PhasedPattern,
    ScanPattern,
    ZipfianPattern,
    make_rates_for_cold_fraction,
)


class TestHeterogeneousPoisson:
    def test_high_rate_pages_always_touched(self, rng):
        rates = np.full(100, 10.0)  # 10 Hz
        pattern = HeterogeneousPoissonPattern(rates)
        reads, writes = pattern.step(0, 60, rng)
        assert reads.size == 100

    def test_zero_rate_pages_never_touched(self, rng):
        pattern = HeterogeneousPoissonPattern(np.zeros(100))
        reads, writes = pattern.step(0, 60, rng)
        assert reads.size == 0

    def test_writes_subset_of_reads(self, rng):
        pattern = HeterogeneousPoissonPattern(
            np.full(500, 1.0), write_fraction=0.5
        )
        reads, writes = pattern.step(0, 60, rng)
        assert np.isin(writes, reads).all()
        assert 0 < writes.size < reads.size

    def test_negative_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousPoissonPattern(np.array([-1.0]))


class TestMakeRates:
    @pytest.mark.parametrize("target", [0.1, 0.3, 0.5, 0.7])
    def test_steady_state_cold_fraction_near_target(self, target, rng):
        """The analytic split should land near the target coldness."""
        rates = make_rates_for_cold_fraction(50_000, target, rng)
        # Steady-state P(idle >= 120s) for a Poisson page = exp(-120*rate).
        expected_cold = np.exp(-120.0 * rates).mean()
        assert expected_cold == pytest.approx(target, abs=0.08)

    def test_rates_positive_and_shuffled(self, rng):
        rates = make_rates_for_cold_fraction(1000, 0.3, rng)
        assert rates.size == 1000
        assert (rates > 0).all()
        # Hot pages (max rate) should not be contiguous after the shuffle.
        hot = np.flatnonzero(rates == rates.max())
        assert hot.size == 0 or hot.max() - hot.min() > hot.size


class TestZipfian:
    def test_head_hotter_than_tail(self, rng):
        pattern = ZipfianPattern(1000, accesses_per_second=50, alpha=1.5)
        head_hits = 0
        tail_hits = 0
        for t in range(20):
            reads, _ = pattern.step(t * 60, 60, rng)
            head_hits += np.count_nonzero(reads < 10)
            tail_hits += np.count_nonzero(reads >= 990)
        assert head_hits > tail_hits

    def test_unique_indices(self, rng):
        pattern = ZipfianPattern(100, accesses_per_second=100)
        reads, _ = pattern.step(0, 60, rng)
        assert np.unique(reads).size == reads.size

    def test_zero_rate_interval(self, rng):
        pattern = ZipfianPattern(100, accesses_per_second=1e-9)
        reads, writes = pattern.step(0, 1, rng)
        assert reads.size == 0 and writes.size == 0


class TestScan:
    def test_full_sweep_touches_everything(self, rng):
        pattern = ScanPattern(1000, period_seconds=3600, sweep_seconds=600)
        touched = []
        for t in range(0, 600, 60):
            reads, _ = pattern.step(t, 60, rng)
            touched.append(reads)
        all_touched = np.concatenate(touched)
        assert np.unique(all_touched).size == 1000

    def test_quiet_between_sweeps(self, rng):
        pattern = ScanPattern(1000, period_seconds=3600, sweep_seconds=600)
        reads, _ = pattern.step(1800, 60, rng)
        assert reads.size == 0

    def test_sweep_repeats_next_period(self, rng):
        pattern = ScanPattern(100, period_seconds=600, sweep_seconds=60)
        first, _ = pattern.step(0, 60, rng)
        second, _ = pattern.step(600, 60, rng)
        np.testing.assert_array_equal(first, second)

    def test_sweep_longer_than_period_rejected(self):
        with pytest.raises(ConfigurationError):
            ScanPattern(100, period_seconds=60, sweep_seconds=120)


class TestPhased:
    def test_hot_window_moves_between_phases(self, rng):
        pattern = PhasedPattern(10_000, hot_fraction=0.1,
                                phase_seconds=HOUR, background_rate=0.0)
        phase_a, _ = pattern.step(0, 60, rng)
        phase_b, _ = pattern.step(HOUR, 60, rng)
        overlap = np.intersect1d(phase_a, phase_b).size
        assert overlap < phase_a.size  # window jumped

    def test_stable_within_phase(self, rng):
        pattern = PhasedPattern(10_000, hot_fraction=0.1,
                                phase_seconds=HOUR, background_rate=0.0)
        first, _ = pattern.step(0, 60, rng)
        second, _ = pattern.step(60, 60, rng)
        np.testing.assert_array_equal(first, second)

    def test_hot_size(self, rng):
        pattern = PhasedPattern(1000, hot_fraction=0.2, background_rate=0.0)
        reads, _ = pattern.step(0, 60, rng)
        assert reads.size == 200


class TestDiurnal:
    def test_activity_peaks_at_phase_zero(self):
        inner = ZipfianPattern(100, accesses_per_second=10)
        diurnal = DiurnalModulation(inner, amplitude=0.6)
        assert diurnal.activity_level(0) == pytest.approx(1.0)
        assert diurnal.activity_level(DAY // 2) == pytest.approx(0.4)

    def test_night_thins_accesses(self, rng):
        inner = HeterogeneousPoissonPattern(np.full(2000, 5.0))
        diurnal = DiurnalModulation(inner, amplitude=0.8)
        day_reads, _ = diurnal.step(0, 60, rng)
        night_reads, _ = diurnal.step(DAY // 2, 60, rng)
        assert night_reads.size < day_reads.size * 0.5

    def test_writes_remain_subset(self, rng):
        inner = HeterogeneousPoissonPattern(np.full(500, 2.0),
                                            write_fraction=0.5)
        diurnal = DiurnalModulation(inner, amplitude=0.7)
        reads, writes = diurnal.step(DAY // 2, 60, rng)
        assert np.isin(writes, reads).all()


@settings(max_examples=20, deadline=None)
@given(
    n_pages=st.integers(min_value=10, max_value=2000),
    cold=st.floats(min_value=0.05, max_value=0.85),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_patterns_emit_valid_indices(n_pages, cold, seed):
    """Property: every generator only emits indices within its page space."""
    rng = np.random.default_rng(seed)
    rates = make_rates_for_cold_fraction(n_pages, cold, rng)
    patterns = [
        HeterogeneousPoissonPattern(rates),
        ZipfianPattern(n_pages, accesses_per_second=n_pages / 10),
        ScanPattern(n_pages, period_seconds=600, sweep_seconds=300),
        PhasedPattern(n_pages, hot_fraction=0.2),
    ]
    for pattern in patterns:
        for t in (0, 60, 300):
            reads, writes = pattern.step(t, 60, rng)
            for indices in (reads, writes):
                if indices.size:
                    assert indices.min() >= 0
                    assert indices.max() < n_pages
