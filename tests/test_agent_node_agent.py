"""Node agent control loop: warm-up, thresholds, soft limits, SLI."""

import numpy as np
import pytest

from repro.agent.node_agent import NodeAgent
from repro.common.rng import SeedSequenceFactory
from repro.core.slo import PromotionRateSlo
from repro.core.threshold_policy import DISABLED, ThresholdPolicyConfig
from repro.kernel.compression import ContentProfile
from repro.kernel.machine import FarMemoryMode, Machine, MachineConfig


COMPRESSIBLE = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)


def make_setup(warmup=120, k=90.0, mode=FarMemoryMode.PROACTIVE):
    machine = Machine(
        "m0",
        MachineConfig(dram_bytes=1 << 30, mode=mode),
        seeds=SeedSequenceFactory(9),
    )
    agent = NodeAgent(
        machine,
        ThresholdPolicyConfig(percentile_k=k, warmup_seconds=warmup),
        PromotionRateSlo(),
    )
    return machine, agent


def drive(machine, agent, seconds, touch=None):
    """Run machine+agent for `seconds`, optionally touching pages per tick."""
    start = machine.now
    for t in range(start, start + seconds, 60):
        if touch is not None:
            touch(t)
        machine.tick(t)
        agent.maybe_control(t)


class TestWarmup:
    def test_zswap_disabled_during_warmup(self):
        machine, agent = make_setup(warmup=600)
        memcg = machine.add_job("j", 1000, COMPRESSIBLE)
        machine.allocate("j", 1000)
        drive(machine, agent, 300)
        assert not memcg.zswap_enabled
        assert machine.far_pages == 0

    def test_zswap_enables_after_warmup(self):
        machine, agent = make_setup(warmup=120)
        memcg = machine.add_job("j", 1000, COMPRESSIBLE)
        machine.allocate("j", 1000)
        drive(machine, agent, 900)
        assert memcg.zswap_enabled
        assert np.isfinite(memcg.cold_age_threshold)
        assert machine.far_pages > 0


class TestThresholdControl:
    def test_idle_job_gets_min_threshold(self):
        machine, agent = make_setup(warmup=60)
        memcg = machine.add_job("j", 1000, COMPRESSIBLE)
        machine.allocate("j", 1000)
        drive(machine, agent, 1200)
        assert memcg.cold_age_threshold == machine.bins.min_threshold

    def test_soft_limit_tracks_working_set(self):
        machine, agent = make_setup(warmup=60)
        memcg = machine.add_job("j", 1000, COMPRESSIBLE)
        idx = machine.allocate("j", 1000)

        def touch(t):
            machine.touch("j", idx[:200])  # 200 hot pages

        drive(machine, agent, 1800, touch)
        # Working set should be about the hot set size.
        assert 150 <= memcg.soft_limit_pages <= 400

    def test_active_job_backs_off(self):
        """A job re-touching cold memory pushes its threshold up."""
        machine, agent = make_setup(warmup=60, k=90.0)
        memcg = machine.add_job("j", 2000, COMPRESSIBLE)
        idx = machine.allocate("j", 2000)
        rng = np.random.default_rng(3)

        def touch(t):
            # Touch a random 10% slice: everything cycles cold->hot.
            machine.touch("j", rng.choice(2000, size=200, replace=False))

        drive(machine, agent, 3600, touch)
        assert memcg.cold_age_threshold > machine.bins.min_threshold


class TestSli:
    def test_sli_samples_accumulate_and_drain(self):
        machine, agent = make_setup(warmup=60)
        machine.add_job("j", 500, COMPRESSIBLE)
        machine.allocate("j", 500)
        drive(machine, agent, 600)
        samples = agent.drain_sli_samples()
        assert len(samples) >= 9
        assert agent.drain_sli_samples() == []
        assert all(s.job_id == "j" for s in samples)

    def test_promotions_counted_in_sli(self):
        machine, agent = make_setup(warmup=60)
        memcg = machine.add_job("j", 1000, COMPRESSIBLE)
        idx = machine.allocate("j", 1000)
        drive(machine, agent, 1200)
        assert machine.far_pages > 0
        machine.touch("j", idx)  # promote everything back
        drive(machine, agent, 120)
        samples = agent.drain_sli_samples()
        assert sum(s.promotions for s in samples) > 0


class TestLifecycleAndModes:
    def test_agent_ignores_reactive_machines(self):
        machine, agent = make_setup(mode=FarMemoryMode.REACTIVE)
        memcg = machine.add_job("j", 500, COMPRESSIBLE)
        machine.allocate("j", 500)
        drive(machine, agent, 600)
        assert agent.drain_sli_samples() == []
        assert memcg.cold_age_threshold == DISABLED

    def test_departed_jobs_dropped_from_state(self):
        machine, agent = make_setup(warmup=60)
        machine.add_job("j", 500, COMPRESSIBLE)
        machine.allocate("j", 500)
        drive(machine, agent, 300)
        machine.remove_job("j")
        drive(machine, agent, 300)
        assert "j" not in agent._jobs

    def test_deploying_new_config_applies_to_new_rounds(self):
        machine, agent = make_setup(warmup=60)
        machine.add_job("j", 500, COMPRESSIBLE)
        machine.allocate("j", 500)
        drive(machine, agent, 300)
        agent.set_policy_config(
            ThresholdPolicyConfig(percentile_k=50.0, warmup_seconds=0)
        )
        assert agent.policy_config.percentile_k == 50.0
        drive(machine, agent, 300)
        assert machine.far_pages > 0


class TestCompaction:
    def test_fragmented_arena_gets_compacted(self):
        machine, agent = make_setup(warmup=60)
        memcg = machine.add_job("j", 2000, COMPRESSIBLE)
        idx = machine.allocate("j", 2000)
        drive(machine, agent, 900)
        assert machine.far_pages > 0
        # Promote most pages back: leaves holes in the arena.
        machine.touch("j", idx)
        before = machine.arena.compactions
        drive(machine, agent, 120)
        assert machine.arena.compactions > before


class TestHistogramRewarm:
    def make_observed(self):
        from repro.common.events import EventLog
        from repro.obs import MetricRegistry

        machine = Machine(
            "m0",
            MachineConfig(dram_bytes=1 << 30),
            seeds=SeedSequenceFactory(9),
        )
        events = EventLog()
        registry = MetricRegistry()
        agent = NodeAgent(
            machine,
            ThresholdPolicyConfig(percentile_k=90.0, warmup_seconds=120),
            PromotionRateSlo(),
            events=events,
            registry=registry,
        )
        return machine, agent, events, registry

    def test_corrupt_histograms_send_job_back_through_warmup(self):
        machine, agent, events, registry = self.make_observed()
        memcg = machine.add_job("j", 1000, COMPRESSIBLE)
        machine.allocate("j", 1000)
        drive(machine, agent, 900)
        assert memcg.zswap_enabled

        memcg.histograms_corrupt = True
        t = machine.now + 60
        machine.tick(t)
        agent.maybe_control(t)
        # The flag is consumed and the job degrades to DISABLED.
        assert not memcg.histograms_corrupt
        assert not memcg.zswap_enabled
        assert memcg.cold_age_threshold == DISABLED
        assert agent.rewarms == 1
        assert registry.value("repro_agent_histogram_rewarms_total") == 1
        assert registry.value("repro_degraded_mode") == 1
        rewarm_events = events.of_kind("agent.histogram_rewarm")
        assert len(rewarm_events) == 1
        assert rewarm_events[0].payload["job"] == "j"

        # After a fresh S-second warm-up the job recovers fully.
        drive(machine, agent, 900)
        assert memcg.zswap_enabled
        assert registry.value("repro_degraded_mode") == 0

    def test_departed_job_clears_degraded_gauge(self):
        machine, agent, events, registry = self.make_observed()
        memcg = machine.add_job("j", 500, COMPRESSIBLE)
        machine.allocate("j", 500)
        drive(machine, agent, 300)
        memcg.histograms_corrupt = True
        t = machine.now + 60
        machine.tick(t)
        agent.maybe_control(t)
        assert registry.value("repro_degraded_mode") == 1
        machine.remove_job("j")
        t += 60
        machine.tick(t)
        agent.maybe_control(t)
        assert registry.value("repro_degraded_mode") == 0


def test_sli_histograms_carry_machine_label():
    from repro.obs import MetricRegistry

    registry = MetricRegistry()
    machine = Machine(
        "m0",
        MachineConfig(dram_bytes=1 << 30),
        seeds=SeedSequenceFactory(9),
    )
    agent = NodeAgent(
        machine,
        ThresholdPolicyConfig(percentile_k=90.0, warmup_seconds=60),
        PromotionRateSlo(),
        registry=registry,
    )
    machine.add_job("j", 1000, COMPRESSIBLE)
    machine.allocate("j", 1000)
    drive(machine, agent, 600)
    text = registry.expose_text()
    for name in ("repro_threshold_seconds", "repro_promotion_rate_pct_per_min"):
        samples = [
            line for line in text.splitlines()
            if line.startswith(name) and not line.startswith("#")
        ]
        assert samples, f"no exposition samples for {name}"
        assert all('machine="m0"' in line for line in samples), name
