"""Fleet churn: finite job lifetimes with population replenishment."""

import numpy as np
import pytest

from repro.cluster import quickfleet
from repro.common.rng import SeedSequenceFactory
from repro.common.units import HOUR
from repro.workloads.job_generator import FleetMixGenerator


class TestGeneratorDurations:
    def test_durations_drawn_in_range(self, seeds):
        generator = FleetMixGenerator(
            seeds=seeds, duration_range=(3600, 7200)
        )
        durations = [s.duration_seconds for s in generator.generate(50)]
        assert all(3600 <= d <= 7200 for d in durations)

    def test_no_range_means_forever(self, seeds):
        generator = FleetMixGenerator(seeds=seeds)
        assert all(
            s.duration_seconds is None for s in generator.generate(10)
        )


class TestClusterChurn:
    def test_population_maintained(self):
        fleet = quickfleet(
            clusters=1,
            machines_per_cluster=2,
            jobs_per_machine=3,
            seed=19,
            churn_duration_range=(1800, 3600),
        )
        cluster = fleet.clusters[0]
        assert len(cluster.running) == 6
        fleet.run(3 * HOUR)  # several job generations pass
        assert len(cluster.running) == 6

    def test_jobs_actually_turn_over(self):
        fleet = quickfleet(
            clusters=1,
            machines_per_cluster=2,
            jobs_per_machine=3,
            seed=19,
            churn_duration_range=(1800, 3600),
        )
        cluster = fleet.clusters[0]
        initial = set(cluster.running)
        fleet.run(2 * HOUR)
        current = set(cluster.running)
        assert initial != current
        assert len(cluster.events.of_kind("scheduler.remove")) > 0

    def test_memory_accounting_survives_churn(self):
        fleet = quickfleet(
            clusters=1,
            machines_per_cluster=2,
            jobs_per_machine=3,
            seed=23,
            churn_duration_range=(1800, 3600),
        )
        fleet.run(3 * HOUR)
        for machine in fleet.machines:
            assert machine.free_bytes >= 0
            assert machine.far_pages == machine.arena.live_objects

    def test_new_jobs_respect_warmup(self):
        """Replacement jobs must not be compressed during their first S
        seconds — that is the whole point of the S parameter."""
        from repro.core import ThresholdPolicyConfig

        fleet = quickfleet(
            clusters=1,
            machines_per_cluster=1,
            jobs_per_machine=2,
            seed=29,
            churn_duration_range=(1800, 2400),
            policy_config=ThresholdPolicyConfig(percentile_k=98,
                                                warmup_seconds=1200),
        )
        cluster = fleet.clusters[0]
        fleet.run(int(2.5 * HOUR))
        for job_id, job in cluster.running.items():
            age = fleet.now - job.start_time
            memcg = job.machine.memcgs[job_id]
            if age < 1200:
                assert memcg.far_pages == 0
