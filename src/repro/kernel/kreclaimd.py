"""kreclaimd: the proactive reclaim daemon (paper §5.1).

Once the node agent publishes a per-job cold-age threshold, kreclaimd walks
each memcg's LRU, finds pages whose age meets or exceeds that job's
threshold, and hands them to zswap for compression.  It runs as a
background task in slack cycles; a per-invocation page budget models the
"unobtrusive background task" behaviour (it never stalls allocations the
way reactive direct reclaim does — that contrast is the §3.2 ablation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.common.validation import check_positive
from repro.kernel.memcg import MemCg
from repro.kernel.zswap import Zswap

if TYPE_CHECKING:
    from repro.kernel.columnar import MachinePagePool
from repro.obs import (
    MetricName,
    MetricRegistry,
    Tracer,
    get_registry,
    get_tracer,
)

__all__ = ["Kreclaimd"]


class Kreclaimd:
    """Background compressor of cold pages.

    Args:
        zswap: the machine's zswap instance.
        pages_per_run: optional cap on pages compressed per invocation,
            modelling the bounded slack-cycle budget; ``None`` = unbounded.
        machine_id: label value for exported metrics ("" standalone).
        registry: metrics registry (defaults to the process-global one).
        tracer: span tracer (defaults to the process-global one).
    """

    def __init__(
        self,
        zswap: Zswap,
        pages_per_run: Optional[int] = None,
        machine_id: str = "",
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        if pages_per_run is not None:
            check_positive(pages_per_run, "pages_per_run")
        self.zswap = zswap
        self.pages_per_run = pages_per_run
        self.machine_id = machine_id
        self.runs = 0
        self.pages_reclaimed = 0

        registry = registry if registry is not None else get_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        self._bind_metrics(registry)

    def _bind_metrics(self, registry: MetricRegistry) -> None:
        self._m_runs = registry.counter(
            MetricName.KRECLAIMD_RUNS_TOTAL,
            "Completed kreclaimd reclaim passes.", ("machine",)
        ).labels(machine=self.machine_id)
        self._m_pages = registry.counter(
            MetricName.PAGES_RECLAIMED_TOTAL,
            "Pages moved to far memory by proactive reclaim.", ("machine",)
        ).labels(machine=self.machine_id)

    def rebind_observability(self, registry: MetricRegistry,
                             tracer: Tracer) -> None:
        """Re-point metric handles and tracer after a cross-process move."""
        self._tracer = tracer
        self._bind_metrics(registry)

    def run(
        self,
        memcgs: Iterable[MemCg],
        pool: Optional["MachinePagePool"] = None,
        pairs: Optional[Iterable[Tuple[MemCg, np.ndarray]]] = None,
    ) -> int:
        """One reclaim pass; returns pages moved to far memory.

        Per memcg: skip jobs whose zswap is disabled (warm-up or at their
        memory limit), collect LRU candidates at the current threshold,
        oldest first, and compress within the remaining budget.  With a
        columnar ``pool``, candidate collection runs as one machine-wide
        mask pass instead of per-memcg array work; ordering, budgeting and
        compression are identical either way.  ``pairs`` supplies
        pre-computed ``(memcg, candidates)`` pairs instead — the cluster
        layer uses it to evaluate one shared cluster-scoped pool mask and
        hand each machine its slice, keeping budget and metrics
        per-machine.
        """
        if pairs is not None and isinstance(pairs, list) and not pairs:
            # Nothing eligible this pass.  Book the run (the scalar path
            # books empty passes too) without paying for span and stream
            # setup — at cluster scope most machines hit this every round.
            self.runs += 1
            self._m_runs.inc()
            return 0
        budget = self.pages_per_run
        moved = 0
        stream = (
            iter(pairs)
            if pairs is not None
            else self._candidate_stream(memcgs, pool)
        )
        with self._tracer.span("kreclaimd.run"):
            for memcg, candidates in stream:
                # LRU walk order: inactive list first, oldest first.
                candidates = memcg.reclaim_order(candidates)
                if budget is not None:
                    if budget <= 0:
                        break
                    candidates = candidates[:budget]
                stored = self.zswap.compress(memcg, candidates)
                moved += stored
                if budget is not None:
                    # Attempted pages consume budget whether or not they
                    # stored: cycles were spent either way.
                    budget -= int(candidates.size)
        self.runs += 1
        self.pages_reclaimed += moved
        self._m_runs.inc()
        self._m_pages.inc(moved)
        return moved

    @staticmethod
    def _candidate_stream(
        memcgs: Iterable[MemCg],
        pool: Optional["MachinePagePool"],
    ) -> Iterator[Tuple[MemCg, np.ndarray]]:
        """Yield ``(memcg, candidates)`` in LRU-walk order, skipping
        zswap-disabled memcgs and empty candidate sets."""
        if pool is not None:
            yield from pool.reclaim_pairs(memcgs)
            return
        for memcg in memcgs:
            if not memcg.zswap_enabled:
                continue
            candidates = memcg.reclaim_candidates(memcg.cold_age_threshold)
            if candidates.size == 0:
                continue
            yield memcg, candidates
