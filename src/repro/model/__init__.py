"""The fast far memory model: trace schema, MapReduce engine, offline replay."""

from repro.model.bench import run_model_bench
from repro.model.mapreduce import MapReduce, mapreduce
from repro.model.replay import (
    FarMemoryModel,
    FleetReplayReport,
    JobReplayResult,
    replay_compiled,
)
from repro.model.trace import (
    TRACE_PERIOD_SECONDS,
    CompiledTrace,
    JobTrace,
    TraceEntry,
)
from repro.model.validation import (
    ConfigOutcome,
    ModelValidator,
    ValidationReport,
)

__all__ = [
    "CompiledTrace",
    "ConfigOutcome",
    "FarMemoryModel",
    "ModelValidator",
    "ValidationReport",
    "FleetReplayReport",
    "JobReplayResult",
    "MapReduce",
    "TRACE_PERIOD_SECONDS",
    "JobTrace",
    "TraceEntry",
    "mapreduce",
    "replay_compiled",
    "run_model_bench",
]
