"""GP covariance kernels: values, symmetry, positive-definiteness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.autotuner.kernels import Matern52Kernel, RbfKernel


@pytest.mark.parametrize("kernel_cls", [RbfKernel, Matern52Kernel])
class TestKernelBasics:
    def test_self_covariance_is_variance(self, kernel_cls):
        kernel = kernel_cls(0.5, variance=2.0)
        x = np.array([[0.1, 0.2]])
        assert kernel(x, x)[0, 0] == pytest.approx(2.0)

    def test_symmetry(self, kernel_cls):
        kernel = kernel_cls(0.3)
        x = np.random.default_rng(0).random((6, 3))
        k = kernel(x, x)
        np.testing.assert_allclose(k, k.T, atol=1e-12)

    def test_decay_with_distance(self, kernel_cls):
        kernel = kernel_cls(0.5)
        origin = np.zeros((1, 1))
        near = np.array([[0.1]])
        far = np.array([[2.0]])
        assert kernel(origin, near)[0, 0] > kernel(origin, far)[0, 0]

    def test_ard_lengthscales(self, kernel_cls):
        # A long lengthscale in dim 0 makes moves there cheap.
        kernel = kernel_cls([10.0, 0.1])
        origin = np.zeros((1, 2))
        move_dim0 = np.array([[1.0, 0.0]])
        move_dim1 = np.array([[0.0, 1.0]])
        assert kernel(origin, move_dim0)[0, 0] > kernel(origin, move_dim1)[0, 0]

    def test_lengthscale_count_mismatch(self, kernel_cls):
        kernel = kernel_cls([0.5, 0.5, 0.5])
        with pytest.raises(ConfigurationError):
            kernel(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_with_params(self, kernel_cls):
        kernel = kernel_cls(0.5, variance=1.0)
        tweaked = kernel.with_params(np.array([0.7]), 3.0)
        assert type(tweaked) is kernel_cls
        assert tweaked.variance == 3.0

    def test_diagonal(self, kernel_cls):
        kernel = kernel_cls(0.5, variance=1.5)
        np.testing.assert_allclose(kernel.diagonal(4), np.full(4, 1.5))

    def test_validation(self, kernel_cls):
        with pytest.raises(ConfigurationError):
            kernel_cls(0.0)
        with pytest.raises(ConfigurationError):
            kernel_cls(0.5, variance=-1.0)


class TestMaternValue:
    def test_known_value(self):
        kernel = Matern52Kernel(1.0)
        r = 1.0
        sr = np.sqrt(5.0)
        expected = (1 + sr + sr**2 / 3) * np.exp(-sr)
        assert kernel(np.zeros((1, 1)), np.ones((1, 1)))[0, 0] == pytest.approx(
            expected
        )


class TestRbfValue:
    def test_known_value(self):
        kernel = RbfKernel(1.0)
        assert kernel(np.zeros((1, 1)), np.ones((1, 1)))[0, 0] == pytest.approx(
            np.exp(-0.5)
        )


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=15),
    d=st.integers(min_value=1, max_value=4),
    lengthscale=st.floats(min_value=0.05, max_value=3.0),
)
@pytest.mark.parametrize("kernel_cls", [RbfKernel, Matern52Kernel])
def test_kernel_matrices_are_psd(kernel_cls, seed, n, d, lengthscale):
    """Property: covariance matrices are positive semidefinite."""
    x = np.random.default_rng(seed).random((n, d))
    k = kernel_cls(lengthscale)(x, x)
    eigenvalues = np.linalg.eigvalsh(k)
    assert eigenvalues.min() >= -1e-8
