#!/usr/bin/env python3
"""Multi-tier far memory: the paper's §8 "exciting end state".

The paper closes by sketching a system that combines hardware and software
far memory — a sub-µs tier-1 (NVM) in front of a single-µs tier-2 (zswap)
— plus hardware compression accelerators.  This example takes real traces
from a simulated fleet and uses :mod:`repro.kernel.tiers` to price four
designs on identical workloads:

1. zswap only (the paper's deployed system),
2. zswap with a hardware compression accelerator,
3. NVM tier-1 + zswap tier-2,
4. NVM tier-1 + Z-SSD tier-2 (all-hardware).

Run:
    python examples/multi_tier_far_memory.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.cluster import quickfleet
from repro.common.units import HOUR
from repro.core.histograms import AgeHistogram
from repro.kernel.tiers import (
    NVM_DEVICE,
    ZSSD_DEVICE,
    ZSWAP_ACCEL_DEVICE,
    ZSWAP_DEVICE,
    TieredFarMemory,
)

DESIGNS = {
    "zswap only (deployed system)": TieredFarMemory(
        [ZSWAP_DEVICE], thresholds_seconds=[480]
    ),
    "zswap + HW compression accel": TieredFarMemory(
        [ZSWAP_ACCEL_DEVICE], thresholds_seconds=[480]
    ),
    "NVM tier-1 + zswap tier-2": TieredFarMemory(
        [NVM_DEVICE, ZSWAP_DEVICE], thresholds_seconds=[240, 1920]
    ),
    "NVM tier-1 + Z-SSD tier-2": TieredFarMemory(
        [NVM_DEVICE, ZSSD_DEVICE], thresholds_seconds=[240, 1920]
    ),
}


def main() -> None:
    print("Collecting fleet traces (4 simulated hours)...")
    fleet = quickfleet(clusters=2, machines_per_cluster=2,
                       jobs_per_machine=5, seed=15)
    fleet.run(4 * HOUR)
    traces = fleet.trace_db.traces()

    # Pool the fleet's last-entry histograms: one fleet-level assignment.
    cold = AgeHistogram.merge(
        [t.entries[-1].cold_age_histogram for t in traces if t.entries]
    )
    promo = AgeHistogram.merge(
        [t.entries[-1].promotion_histogram for t in traces if t.entries]
    )
    total_pages = cold.total

    rows = []
    for name, design in DESIGNS.items():
        result = design.assign(cold, promo, interval_seconds=300)
        far_pages = sum(result.pages_per_tier[1:])
        rows.append(
            (
                name,
                f"{far_pages / total_pages:.1%}",
                f"{result.dram_cost_saving_fraction:.1%}",
                f"{result.expected_access_seconds_per_min * 1e3:.2f} ms",
                sum(result.stranded_pages_per_tier),
            )
        )
    print()
    print(
        render_table(
            ["design", "memory in far tiers", "DRAM cost saving",
             "expected stall/min", "stranded pages"],
            rows,
            title="§8 — far-memory tier designs on identical fleet traces",
        )
    )
    print(
        "\nTwo tiers capture more memory at lower expected stall (warm"
        "\npages land on the sub-us tier), and the accelerator strictly"
        "\nimproves the software-only design — both §8 predictions."
    )


if __name__ == "__main__":
    main()
