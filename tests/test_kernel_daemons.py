"""kstaled and kreclaimd daemons."""

import numpy as np
import pytest

from repro.core.histograms import default_age_bins
from repro.kernel.compression import ContentProfile
from repro.kernel.kreclaimd import Kreclaimd
from repro.kernel.kstaled import Kstaled
from repro.kernel.memcg import MemCg
from repro.kernel.zsmalloc import ZsmallocArena
from repro.kernel.zswap import Zswap


@pytest.fixture
def compressible_memcg(rng):
    profile = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)
    return MemCg("job", 1000, profile, default_age_bins(), rng)


class TestKstaled:
    def test_scans_on_period_boundaries(self, compressible_memcg):
        kstaled = Kstaled(scan_period=120)
        compressible_memcg.allocate(100)
        ran = [t for t in range(0, 601, 60)
               if kstaled.maybe_scan(t, [compressible_memcg])]
        assert ran == [0, 120, 240, 360, 480, 600]
        assert kstaled.scans_completed == 6

    def test_ages_accumulate_across_scans(self, compressible_memcg):
        kstaled = Kstaled()
        idx = compressible_memcg.allocate(10)
        for t in range(0, 601, 120):
            kstaled.maybe_scan(t, [compressible_memcg])
        # First scan consumed the allocation touch; 5 further scans aged.
        assert (compressible_memcg.age_scans[idx] == 5).all()

    def test_cpu_budget_accounting(self, compressible_memcg):
        kstaled = Kstaled()
        compressible_memcg.allocate(1000)
        kstaled.scan([compressible_memcg])
        assert kstaled.pages_scanned == 1000
        assert kstaled.cpu_seconds > 0

    def test_utilization_under_paper_budget(self, rng):
        """A 256 GiB machine's scan load stays under ~11% of one core."""
        kstaled = Kstaled()
        # Model the cost arithmetic directly: 64 Mi pages per scan.
        pages = 64 * 1024 * 1024
        from repro.kernel.kstaled import SCAN_SECONDS_PER_PAGE

        per_scan_seconds = pages * SCAN_SECONDS_PER_PAGE
        utilization = per_scan_seconds / kstaled.scan_period
        assert utilization < 0.11

    def test_utilization_of_core(self, compressible_memcg):
        kstaled = Kstaled()
        compressible_memcg.allocate(500)
        kstaled.scan([compressible_memcg])
        assert kstaled.utilization_of_core(120) > 0
        assert kstaled.utilization_of_core(0) == 0.0


class TestKreclaimd:
    def _aged_memcg(self, memcg, scans=3):
        memcg.scan_update()
        for _ in range(scans):
            memcg.scan_update()
        return memcg

    def test_respects_threshold(self, compressible_memcg):
        zswap = Zswap(ZsmallocArena())
        reclaimd = Kreclaimd(zswap)
        compressible_memcg.allocate(100)
        self._aged_memcg(compressible_memcg, scans=2)  # 240s old
        compressible_memcg.cold_age_threshold = 480.0
        assert reclaimd.run([compressible_memcg]) == 0
        compressible_memcg.cold_age_threshold = 240.0
        assert reclaimd.run([compressible_memcg]) == 100

    def test_skips_disabled_jobs(self, compressible_memcg):
        zswap = Zswap(ZsmallocArena())
        reclaimd = Kreclaimd(zswap)
        compressible_memcg.allocate(100)
        self._aged_memcg(compressible_memcg)
        compressible_memcg.cold_age_threshold = 120.0
        compressible_memcg.zswap_enabled = False
        assert reclaimd.run([compressible_memcg]) == 0

    def test_budget_bounds_work_per_run(self, compressible_memcg):
        zswap = Zswap(ZsmallocArena())
        reclaimd = Kreclaimd(zswap, pages_per_run=30)
        compressible_memcg.allocate(100)
        self._aged_memcg(compressible_memcg)
        compressible_memcg.cold_age_threshold = 120.0
        assert reclaimd.run([compressible_memcg]) == 30
        assert reclaimd.run([compressible_memcg]) == 30

    def test_oldest_first(self, rng):
        profile = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)
        memcg = MemCg("job", 100, profile, default_age_bins(), rng)
        idx = memcg.allocate(20)
        memcg.scan_update()
        memcg.age_scans[idx[:10]] = 10  # much older
        memcg.age_scans[idx[10:]] = 2
        memcg.cold_age_threshold = 120.0
        zswap = Zswap(ZsmallocArena())
        reclaimd = Kreclaimd(zswap, pages_per_run=10)
        reclaimd.run([memcg])
        assert memcg.far_mask()[idx[:10]].all()
        assert not memcg.far_mask()[idx[10:]].any()

    def test_counters(self, compressible_memcg):
        zswap = Zswap(ZsmallocArena())
        reclaimd = Kreclaimd(zswap)
        compressible_memcg.allocate(50)
        self._aged_memcg(compressible_memcg)
        compressible_memcg.cold_age_threshold = 120.0
        reclaimd.run([compressible_memcg])
        assert reclaimd.runs == 1
        assert reclaimd.pages_reclaimed == 50
