"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.common.rng import SeedSequenceFactory


def pytest_configure(config: pytest.Config) -> None:
    # Registered here as well as in pyproject.toml so the marker exists
    # even when the suite runs from an sdist without the project config.
    config.addinivalue_line(
        "markers",
        "lint: static-analysis gate tests (deselect with '-m \"not lint\"')",
    )
    # Tier-1 runs exercise the runtime invariants (the dynamic half of
    # repro.checks) by default; export REPRO_CHECKS=0 to opt out.
    os.environ.setdefault("REPRO_CHECKS", "1")
from repro.core.histograms import AgeBins, default_age_bins
from repro.kernel.compression import ContentProfile
from repro.kernel.machine import Machine, MachineConfig
from repro.kernel.memcg import MemCg


@pytest.fixture
def bins() -> AgeBins:
    """The paper-default candidate threshold grid."""
    return default_age_bins()


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def seeds() -> SeedSequenceFactory:
    """A fixed-root seed factory."""
    return SeedSequenceFactory(42)


@pytest.fixture
def compressible_profile() -> ContentProfile:
    """A profile where every page compresses (no incompressible tail)."""
    return ContentProfile(median_ratio=3.0, sigma=0.2, incompressible_fraction=0.0, min_ratio=1.5)


@pytest.fixture
def memcg(bins, rng, compressible_profile) -> MemCg:
    """A small memcg with 1000 fully-compressible page slots."""
    return MemCg(
        job_id="test-job",
        capacity_pages=1000,
        content_profile=compressible_profile,
        bins=bins,
        rng=rng,
    )


@pytest.fixture
def machine(seeds) -> Machine:
    """A 1 GiB proactive machine."""
    return Machine("m-test", MachineConfig(dram_bytes=1 << 30), seeds=seeds)


@pytest.fixture(scope="session")
def warm_fleet():
    """A small fleet run for 4 simulated hours (expensive; shared)."""
    from repro.cluster import quickfleet

    fleet = quickfleet(
        clusters=2,
        machines_per_cluster=2,
        jobs_per_machine=4,
        seed=2024,
    )
    fleet.run(4 * 3600)
    return fleet
